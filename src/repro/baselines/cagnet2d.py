"""A full (functional + costed) CAGNET 2D (SUMMA) trainer.

The third member of CAGNET's partitioning family. Processes form an
``r x r`` grid (``P = r^2``); the adjacency is 2D-tiled over the grid
and the features are 2D-tiled too: proc ``(i, j)`` holds ``H_ij`` (row
block ``i``, feature-column block ``j``).

One distributed SpMM is stationary-C SUMMA:

    for k in 0..r-1:
        broadcast A_ik  along grid row    i (root: column k)
        broadcast H_kj  along grid column j (root: row k)
        AH_ij += A_ik @ H_kj

Because the features are *column*-partitioned, the following GeMM
``Z = (AH) W`` needs a reduction: proc ``(i, j)`` computes the partial
``AH_ij @ W[block_j, :]`` and the grid row allreduces the partials —
exactly the extra dense-matrix communication Section 4.1 cites when it
rejects column partitioning ("not only A is communicated, but also the
dense matrix C"). The backward pass mirrors this with one more row
allreduce. Weights are fully replicated; their gradient is assembled
with a global allreduce of per-proc block contributions.

Educational reference implementation: clarity over buffer thrift (each
proc keeps full-width row copies where the algorithm replicates them).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.comm.collectives import Communicator
from repro.config import FLOAT_DTYPE
from repro.device.engine import SimContext
from repro.device.tensor import DeviceTensor, Mode
from repro.errors import ConfigurationError
from repro.datasets.loader import Dataset, SymbolicDataset
from repro.hardware.machines import dgx1
from repro.hardware.spec import MachineSpec
from repro.kernels.cost import CostModel, KernelCosts
from repro.kernels.ops import adam_step_op, gemm, softmax_cross_entropy, spmm
from repro.nn.init import init_weights
from repro.nn.model import GCNModelSpec
from repro.core.stats import EpochStats, OpBreakdown
from repro.sparse.csr import CSRMatrix
from repro.sparse.normalize import gcn_normalize
from repro.sparse.partition import PartitionVector, uniform_partition, tile_grid
from repro.sparse.permutation import apply_permutation, permute_rows, random_permutation
from repro.sparse.symbolic import SymbolicCSR
from repro.baselines.cagnet import CAGNET_KERNEL_COSTS


def _isqrt(P: int) -> int:
    r = int(round(P**0.5))
    if r * r != P:
        raise ConfigurationError(f"2D grid needs a square GPU count, got {P}")
    return r


class CAGNET2DTrainer:
    """CAGNET's 2D (SUMMA) algorithm on the simulated machine."""

    def __init__(
        self,
        dataset: Union[Dataset, SymbolicDataset],
        model: GCNModelSpec,
        machine: Optional[MachineSpec] = None,
        num_gpus: Optional[int] = None,
        lr: float = 1e-2,
        seed: int = 0,
        permute: bool = False,
        kernel_costs: Optional[KernelCosts] = None,
    ):
        machine = machine or dgx1()
        mode = Mode.SYMBOLIC if dataset.is_symbolic else Mode.FUNCTIONAL
        if model.layer_dims[0] != dataset.d0:
            raise ConfigurationError(
                f"model input width {model.layer_dims[0]} != dataset d0 {dataset.d0}"
            )
        P = num_gpus if num_gpus is not None else machine.num_gpus
        self.r = _isqrt(P)
        if min(model.layer_dims) < self.r:
            raise ConfigurationError(
                f"2D grid of {self.r} columns cannot split width "
                f"{min(model.layer_dims)}"
            )
        self.dataset = dataset
        self.model = model
        self.lr = lr
        self.ctx = SimContext(machine, num_gpus=P, mode=mode)
        costs = kernel_costs or CAGNET_KERNEL_COSTS
        self.cost_models = [CostModel(machine.gpu, costs) for _ in range(P)]

        r = self.r
        self.row_comms = [
            Communicator(self.ctx, ranks=[i * r + j for j in range(r)])
            for i in range(r)
        ]
        self.col_comms = [
            Communicator(self.ctx, ranks=[i * r + j for i in range(r)])
            for j in range(r)
        ]
        self.world_comm = Communicator(self.ctx)

        self.row_part = uniform_partition(dataset.n, r)
        #: feature-column partitions, one per model width.
        self.col_parts: Dict[int, PartitionVector] = {
            d: uniform_partition(d, r) for d in set(model.layer_dims)
        }
        self._build_graph(permute, seed)
        self._build_state(seed, mode)
        self._adam_t = 0
        self.epochs_trained = 0

    # -- setup ---------------------------------------------------------------

    def _gpu(self, i: int, j: int) -> int:
        return i * self.r + j

    def _build_graph(self, permute: bool, seed: int) -> None:
        ds = self.dataset
        r = self.r
        mode = self.ctx.mode
        if mode is Mode.FUNCTIONAL:
            adj = ds.adjacency
            features = ds.features
            labels, train = ds.labels, ds.train_mask
            val, test = ds.val_mask, ds.test_mask
            if permute:
                perm = random_permutation(ds.n, seed=seed)
                adj = apply_permutation(adj, perm)
                features = permute_rows(features, perm)
                labels = permute_rows(labels, perm)
                train = permute_rows(train, perm)
                val = permute_rows(val, perm)
                test = permute_rows(test, perm)
            a_hat = gcn_normalize(adj)
            fwd = tile_grid(a_hat.transpose(), self.row_part, self.row_part)
            bwd = tile_grid(a_hat, self.row_part, self.row_part)
        else:
            def sym_tile(i: int, j: int) -> SymbolicCSR:
                area = self.row_part.size(i) * self.row_part.size(j)
                nnz = int(round(ds.m * area / (ds.n * ds.n)))
                return SymbolicCSR(
                    (self.row_part.size(i), self.row_part.size(j)), nnz
                )

            fwd = [[sym_tile(i, j) for j in range(r)] for i in range(r)]
            bwd = [[sym_tile(i, j) for j in range(r)] for i in range(r)]
            features = labels = train = val = test = None

        self.fwd_tiles = fwd
        self.bwd_tiles = bwd
        d0_part = self.col_parts[self.model.layer_dims[0]]
        self.features: Dict[int, DeviceTensor] = {}
        self.labels: Dict[int, Optional[np.ndarray]] = {}
        self.train_masks: Dict[int, Optional[np.ndarray]] = {}
        self.val_masks: Dict[int, Optional[np.ndarray]] = {}
        self.test_masks: Dict[int, Optional[np.ndarray]] = {}
        for i in range(r):
            r0, r1 = self.row_part.part(i)
            for j in range(r):
                g = self._gpu(i, j)
                dev = self.ctx.device(g)
                c0, c1 = d0_part.part(j)
                if mode is Mode.FUNCTIONAL:
                    self.features[g] = dev.from_numpy(
                        np.ascontiguousarray(
                            features[r0:r1, c0:c1], dtype=FLOAT_DTYPE
                        ),
                        name=f"X{i}{j}", tag="features",
                    )
                    self.labels[g] = labels[r0:r1].copy()
                    self.train_masks[g] = train[r0:r1].copy()
                    self.val_masks[g] = val[r0:r1].copy()
                    self.test_masks[g] = test[r0:r1].copy()
                else:
                    self.features[g] = dev.symbolic(
                        (r1 - r0, c1 - c0), name=f"X{i}{j}", tag="features"
                    )
                    self.labels[g] = None
                    self.train_masks[g] = None
                    self.val_masks[g] = None
                    self.test_masks[g] = None
                # proc (i, j) stores tiles A_ij and A^T_ij
                dev.pool.allocate(
                    self.fwd_tiles[i][j].nbytes + self.bwd_tiles[i][j].nbytes,
                    tag="adjacency",
                )

    def _build_state(self, seed: int, mode: Mode) -> None:
        dims = self.model.layer_dims
        r = self.r
        max_rows = max(self.row_part.sizes())
        max_d = max(dims)
        self.full_row: Dict[int, DeviceTensor] = {}
        self.ah_full: Dict[int, DeviceTensor] = {}
        self.bc_a: Dict[int, DeviceTensor] = {}
        self.bc_h: Dict[int, DeviceTensor] = {}
        self.gslice: Dict[int, DeviceTensor] = {}
        self.act_slices: Dict[int, List[DeviceTensor]] = {}
        for g in range(self.ctx.num_gpus):
            dev = self.ctx.device(g)
            rows = self.row_part.size(g // r)
            # full-width row-block scratch (GeMM reduction target + H_G)
            self.full_row[g] = dev.empty((rows, max_d), name="rowfull",
                                         tag="buffer/rowfull")
            self.ah_full[g] = dev.empty((rows, max_d), name="ahfull",
                                        tag="buffer/rowfull")
            # receive buffers for the SUMMA broadcasts
            self.bc_h[g] = dev.empty(
                (max_rows, -(-max_d // r) + 1), name="BCH",
                tag="buffer/broadcast",
            )
            # dedicated buffer for the sliced backward gradient (must
            # not alias the broadcast receive buffer: a proc's own slice
            # is read in stages after its bc buffer has been refilled).
            self.gslice[g] = dev.empty(
                (rows, -(-max_d // r) + 1), name="Gslice", tag="buffer/grad"
            )
            # sparse-tile broadcast accounted as raw bytes; keep a small
            # descriptor allocation so memory reflects the staged tile.
            max_tile_bytes = max(
                t.nbytes for row in self.fwd_tiles for t in row
            )
            dev.pool.allocate(max_tile_bytes, tag="buffer/broadcast-sparse")
            # per-layer activation slices kept for backward
            self.act_slices[g] = [
                dev.empty(
                    (rows, self.col_parts[dims[l + 1]].size(g % r)),
                    name=f"H{l}", tag="buffer/eager",
                )
                for l in range(self.model.num_layers)
            ]

        init = init_weights(dims, seed=seed)
        self.weights: Dict[int, List[DeviceTensor]] = {}
        self.wgrads: Dict[int, List[DeviceTensor]] = {}
        self.adam_m: Dict[int, List[DeviceTensor]] = {}
        self.adam_v: Dict[int, List[DeviceTensor]] = {}
        for g in range(self.ctx.num_gpus):
            dev = self.ctx.device(g)
            w_l, g_l, m_l, v_l = [], [], [], []
            for l in range(self.model.num_layers):
                shape = (dims[l], dims[l + 1])
                if mode is Mode.FUNCTIONAL:
                    w_l.append(dev.from_numpy(init[l].copy(), name=f"W{l}",
                                              tag="weights"))
                    g_l.append(dev.zeros(shape, name=f"WG{l}", tag="weights"))
                    m_l.append(dev.zeros(shape, name=f"m{l}", tag="adam"))
                    v_l.append(dev.zeros(shape, name=f"v{l}", tag="adam"))
                else:
                    w_l.append(dev.symbolic(shape, name=f"W{l}", tag="weights"))
                    g_l.append(dev.symbolic(shape, name=f"WG{l}", tag="weights"))
                    m_l.append(dev.symbolic(shape, name=f"m{l}", tag="adam"))
                    v_l.append(dev.symbolic(shape, name=f"v{l}", tag="adam"))
            self.weights[g] = w_l
            self.wgrads[g] = g_l
            self.adam_m[g] = m_l
            self.adam_v[g] = v_l

    @property
    def mode(self) -> Mode:
        return self.ctx.mode

    def get_weights(self) -> List[np.ndarray]:
        return [w.copy_to_numpy() for w in self.weights[0]]

    # -- SUMMA SpMM ---------------------------------------------------------------

    def _summa_spmm(
        self,
        tiles: Sequence[Sequence[object]],
        h_slices: Dict[int, DeviceTensor],
        width_part: PartitionVector,
        label: str,
    ) -> Dict[int, DeviceTensor]:
        """2D SpMM: returns per-proc AH_ij slices (rows_i x width_j).

        ``h_slices[(k, j)]`` holds H_kj. Stage ``k`` broadcasts the
        sparse tile ``A_ik`` along grid row ``i`` and ``H_kj`` along
        grid column ``j``.
        """
        engine = self.ctx.engine
        r = self.r
        outputs: Dict[int, DeviceTensor] = {}
        for g in range(self.ctx.num_gpus):
            i, j = divmod(g, r)
            rows = self.row_part.size(i)
            width = width_part.size(j)
            out = self.ah_full[g].view2d(rows, width)
            out.fill_(0.0)
            engine.submit(
                self.ctx.device(g).compute_stream, f"{label}/zero", "memset",
                self.cost_models[g].memset_time(out.nbytes),
            )
            outputs[g] = out

        for k in range(r):
            # broadcast the sparse tiles A_ik along each grid row: the
            # tile lives on proc (i, k). Sparse payloads are host-side
            # CSR objects; timing uses the tile's byte size.
            a_events: Dict[int, object] = {}
            for i in range(r):
                comm = self.row_comms[i]
                root = self._gpu(i, k)
                tile = tiles[i][k]
                src_desc = self.ctx.device(root).symbolic(
                    (max(tile.nbytes // 4, 1),), name="Atile", tag="staging"
                )
                dsts = {
                    self._gpu(i, j): self.ctx.device(self._gpu(i, j)).symbolic(
                        (max(tile.nbytes // 4, 1),), name="Atile-rx",
                        tag="staging",
                    )
                    for j in range(r)
                    if j != k
                }
                events = comm.broadcast(
                    root=root, src=src_desc, dsts=dsts,
                    stage=k, name=f"{label}/bcastA[{k}]",
                )
                for g, ev in events.items():
                    a_events[g] = ev
                src_desc.free()
                for d in dsts.values():
                    d.free()
            # broadcast H_kj down each grid column
            for j in range(r):
                comm = self.col_comms[j]
                root = self._gpu(k, j)
                src = h_slices[root]
                dsts = {
                    self._gpu(i, j): self.bc_h[self._gpu(i, j)].view2d(
                        src.rows, src.cols
                    )
                    for i in range(r)
                    if i != k
                }
                events = comm.broadcast(
                    root=root, src=src, dsts=dsts,
                    stage=k, name=f"{label}/bcastH[{k}]",
                )
                for i in range(r):
                    g = self._gpu(i, j)
                    operand = src if i == k else dsts[g]
                    deps = [events[g]]
                    if g in a_events:
                        deps.append(a_events[g])
                    spmm(
                        engine, self.cost_models[g],
                        self.ctx.device(g).compute_stream,
                        tiles[i][k], operand, outputs[g],
                        accumulate=True, deps=deps,
                        stage=k, name=f"{label}[{k}]",
                    )
        return outputs

    def _row_allreduce_full(
        self,
        partials: Dict[int, DeviceTensor],
        label: str,
    ) -> None:
        """Allreduce full-width row blocks across each grid row in place."""
        for i in range(self.r):
            self.row_comms[i].allreduce(
                {self._gpu(i, j): partials[self._gpu(i, j)]
                 for j in range(self.r)},
                op="sum", name=label,
            )

    # -- passes ----------------------------------------------------------------------

    def _forward(self):
        engine = self.ctx.engine
        r = self.r
        L = self.model.num_layers
        inputs: Dict[int, DeviceTensor] = dict(self.features)
        slices_per_layer: List[Dict[int, DeviceTensor]] = []
        full_per_layer: List[Dict[int, np.ndarray]] = []
        for l in range(L):
            d_in, d_out = self.model.dims_of(l)
            in_part = self.col_parts[d_in]
            out_part = self.col_parts[d_out]
            ah = self._summa_spmm(self.fwd_tiles, inputs, in_part,
                                  f"fwd{l}/spmm")
            # GeMM with the row reduction: partial = AH_ij @ W[block_j, :]
            z_full: Dict[int, DeviceTensor] = {}
            for g in range(self.ctx.num_gpus):
                i, j = divmod(g, r)
                rows = self.row_part.size(i)
                c0, c1 = in_part.part(j)
                w_block = self.weights[g][l].view(self.weights[g][l].rows)
                w_slice = (
                    w_block.data[c0:c1] if w_block.data is not None else None
                )
                target = self.full_row[g].view2d(rows, d_out)
                if ah[g].data is not None and w_slice is not None:
                    np.matmul(ah[g].data, w_slice, out=target.data)
                engine.submit(
                    self.ctx.device(g).compute_stream, f"fwd{l}/gemm", "gemm",
                    self.cost_models[g].gemm_time(rows, d_out, c1 - c0),
                )
                z_full[g] = target
            self._row_allreduce_full(z_full, f"fwd{l}/allreduce_z")
            # activation + slice back to 2D tiles
            outs: Dict[int, DeviceTensor] = {}
            full_values: Dict[int, np.ndarray] = {}
            for g in range(self.ctx.num_gpus):
                i, j = divmod(g, r)
                z = z_full[g]
                if l < L - 1 and z.data is not None:
                    np.maximum(z.data, 0.0, out=z.data)
                if l < L - 1:
                    engine.submit(
                        self.ctx.device(g).compute_stream, f"fwd{l}/relu",
                        "activation",
                        self.cost_models[g].elementwise_time(z.size, 1, 1),
                    )
                c0, c1 = out_part.part(j)
                dst = self.act_slices[g][l]
                if z.data is not None:
                    np.copyto(dst.data, z.data[:, c0:c1])
                engine.submit(
                    self.ctx.device(g).compute_stream, f"fwd{l}/slice",
                    "memset",
                    self.cost_models[g].memset_time(dst.nbytes),
                )
                outs[g] = dst
                if z.data is not None:
                    full_values[g] = z.data.copy()
            slices_per_layer.append(outs)
            full_per_layer.append(full_values)
            inputs = outs
        return slices_per_layer, full_per_layer

    def _loss_and_grad_full(self, logits_full: Dict[int, np.ndarray]):
        """Masked softmax-CE on the (row-replicated) full logits.

        Returns the scalar loss and per-proc full-width gradient arrays.
        """
        engine = self.ctx.engine
        r = self.r
        d_l = self.model.layer_dims[-1]
        num_train = self.dataset.num_train
        total = 0.0
        grads_full: Dict[int, DeviceTensor] = {}
        for g in range(self.ctx.num_gpus):
            i, j = divmod(g, r)
            rows = self.row_part.size(i)
            target = self.full_row[g].view2d(rows, d_l)
            if self.mode is Mode.FUNCTIONAL:
                logits_arr = logits_full[g]
                holder = target
                np.copyto(holder.data, logits_arr)
                local, _ = softmax_cross_entropy(
                    engine, self.cost_models[g],
                    self.ctx.device(g).compute_stream,
                    holder, self.labels[g], self.train_masks[g],
                    grad_out=holder, total_train=num_train, name="loss",
                )
                if j == 0:
                    total += local
            else:
                engine.submit(
                    self.ctx.device(g).compute_stream, "loss", "loss",
                    self.cost_models[g].softmax_xent_time(rows, d_l),
                )
            grads_full[g] = target
        loss = None if self.mode is Mode.SYMBOLIC else total / num_train
        return loss, grads_full

    def _backward(self, slices_per_layer, full_per_layer,
                  grads_full: Dict[int, DeviceTensor]) -> None:
        engine = self.ctx.engine
        r = self.r
        L = self.model.num_layers
        self._adam_t += 1
        for l in range(L - 1, -1, -1):
            d_in, d_out = self.model.dims_of(l)
            in_part = self.col_parts[d_in]
            out_part = self.col_parts[d_out]
            # relu mask on the full-width gradient (stored activations
            # are full-width copies kept by the forward pass)
            if l < L - 1:
                for g in range(self.ctx.num_gpus):
                    grad = grads_full[g]
                    if grad.data is not None:
                        grad.data *= full_per_layer[l][g] > 0
                    engine.submit(
                        self.ctx.device(g).compute_stream, f"bwd{l}/relu",
                        "activation",
                        self.cost_models[g].elementwise_time(grad.size, 2, 1),
                    )
            # slice G to 2D tiles for the backward SUMMA (dedicated
            # buffers: the bc_h receive buffer is clobbered per stage)
            g_slices: Dict[int, DeviceTensor] = {}
            for g in range(self.ctx.num_gpus):
                i, j = divmod(g, r)
                c0, c1 = out_part.part(j)
                rows = self.row_part.size(i)
                view = self.gslice[g].view2d(rows, c1 - c0)
                if grads_full[g].data is not None:
                    np.copyto(view.data, grads_full[g].data[:, c0:c1])
                engine.submit(
                    self.ctx.device(g).compute_stream, f"bwd{l}/slice",
                    "memset",
                    self.cost_models[g].memset_time(view.nbytes),
                )
                g_slices[g] = view
            hwg = self._summa_spmm(self.bwd_tiles, g_slices, out_part,
                                   f"bwd{l}/spmm")
            # assemble full-width HW_G per row (row allreduce of padded
            # slices), needed by both W_G and H_G. The pad target reuses
            # full_row, whose G payload is dead (it lives in g_slices);
            # hwg itself lives in ah_full, so the two cannot alias.
            hwg_full: Dict[int, DeviceTensor] = {}
            for g in range(self.ctx.num_gpus):
                i, j = divmod(g, r)
                rows = self.row_part.size(i)
                c0, c1 = out_part.part(j)
                target = self.full_row[g].view2d(rows, d_out)
                target.fill_(0.0)
                if hwg[g].data is not None:
                    target.data[:, c0:c1] = hwg[g].data
                engine.submit(
                    self.ctx.device(g).compute_stream, f"bwd{l}/pad", "memset",
                    self.cost_models[g].memset_time(target.nbytes),
                )
                hwg_full[g] = target
            self._row_allreduce_full(hwg_full, f"bwd{l}/allreduce_hwg")

            # weight gradient: proc (i, j) contributes
            # H_ij^T @ HWG_i(full) into W_G rows of block j.
            for g in range(self.ctx.num_gpus):
                i, j = divmod(g, r)
                h_in = (self.features[g] if l == 0
                        else slices_per_layer[l - 1][g])
                part_for_block = in_part
                c0, c1 = part_for_block.part(j)
                wg = self.wgrads[g][l]
                if wg.data is not None and h_in.data is not None:
                    wg.data.fill(0.0)
                    wg.data[c0:c1] = h_in.data.T @ hwg_full[g].data
                engine.submit(
                    self.ctx.device(g).compute_stream, f"bwd{l}/wgrad", "gemm",
                    self.cost_models[g].gemm_time(
                        c1 - c0, d_out, h_in.rows
                    ),
                )
            self.world_comm.allreduce(
                {g: self.wgrads[g][l] for g in range(self.ctx.num_gpus)},
                op="sum", name=f"bwd{l}/allreduce_wg",
            )
            # replicas along each grid column computed identical block
            # contributions (same H_ij^T @ HWG_i? no: different i), but
            # the same (j) block is contributed by r procs (one per i),
            # which is exactly the sum over row blocks — no rescale.
            if l > 0:
                for g in range(self.ctx.num_gpus):
                    i, j = divmod(g, r)
                    rows = self.row_part.size(i)
                    # H_G goes into ah_full (the SUMMA outputs there are
                    # dead once padded); it must not overlap hwg_full.
                    target = self.ah_full[g].view2d(rows, d_in)
                    if hwg_full[g].data is not None:
                        np.matmul(
                            hwg_full[g].data, self.weights[g][l].data.T,
                            out=target.data,
                        )
                    engine.submit(
                        self.ctx.device(g).compute_stream, f"bwd{l}/hgrad",
                        "gemm",
                        self.cost_models[g].gemm_time(rows, d_in, d_out),
                    )
                    grads_full[g] = target
            for g in range(self.ctx.num_gpus):
                self._adam(g, l)

    def _adam(self, g: int, layer: int) -> None:
        stream = self.ctx.device(g).compute_stream
        w = self.weights[g][layer]
        if self.mode is Mode.FUNCTIONAL:
            adam_step_op(
                self.ctx.engine, self.cost_models[g], stream,
                w.data, self.wgrads[g][layer].data,
                self.adam_m[g][layer].data, self.adam_v[g][layer].data,
                t=self._adam_t, lr=self.lr, beta1=0.9, beta2=0.999, eps=1e-8,
                name=f"adam{layer}",
            )
        else:
            self.ctx.engine.submit(
                stream, f"adam{layer}", "adam",
                self.cost_models[g].adam_time(w.size),
            )

    # -- epochs -------------------------------------------------------------------------

    def train_epoch(self) -> EpochStats:
        t0 = self.ctx.synchronize()
        trace_start = len(self.ctx.engine.trace)
        slices_per_layer, full_per_layer = self._forward()
        loss, grads_full = self._loss_and_grad_full(full_per_layer[-1])
        self._backward(slices_per_layer, full_per_layer, grads_full)
        t1 = self.ctx.synchronize()
        trace = self.ctx.engine.trace[trace_start:]
        self.epochs_trained += 1
        return EpochStats(
            epoch_time=t1 - t0,
            loss=loss,
            breakdown=OpBreakdown.from_trace(trace),
            peak_memory=self.ctx.peak_memory(),
            trace=list(trace),
        )

    def fit(self, epochs: int) -> List[EpochStats]:
        if epochs < 0:
            raise ConfigurationError(f"epochs must be >= 0, got {epochs}")
        return [self.train_epoch() for _ in range(epochs)]

    def evaluate(self, split: str = "test") -> float:
        """Accuracy over ``split`` (functional only; uses column-0 procs'
        row-replicated full logits)."""
        if self.mode is not Mode.FUNCTIONAL:
            raise ConfigurationError("evaluate() requires functional mode")
        masks = {
            "train": self.train_masks,
            "val": self.val_masks,
            "test": self.test_masks,
        }
        if split not in masks:
            raise ConfigurationError(f"unknown split {split!r}")
        _slices, fulls = self._forward()
        correct = 0
        count = 0
        for i in range(self.r):
            g = self._gpu(i, 0)
            mask = masks[split][g]
            if mask is None or not mask.any():
                continue
            pred = np.argmax(fulls[-1][g][mask], axis=1)
            correct += int((pred == self.labels[g][mask]).sum())
            count += int(mask.sum())
        if count == 0:
            raise ConfigurationError(f"empty {split!r} split")
        return correct / count
