"""A full (functional + costed) CAGNET 1.5D trainer.

Section 5.1 of the paper *analyses* the 1.5D algorithm of CAGNET
(Tripathy et al., SC'20) and decides not to implement it — it halves
the broadcast volume but doubles memory and, on DGX-1's asymmetric
mesh, loses to 1D on the inter-replica reduction. Because our substrate
makes experiments cheap, we implement the algorithm fully so §5.1's
analytic conclusion can be checked against *measured* simulated epochs
(see ``benchmarks/test_sec51_partitioning_analysis.py``).

Algorithm (replication factor ``c``, ``P = R x c`` GPUs in a grid of
``R`` rows by ``c`` replica layers; GPU ``g = l * R + i``):

* the adjacency's block-row ``i`` (all ``R`` column tiles) and the
  feature rows ``H^i`` are stored on every layer's GPU ``(i, l)`` —
  ``c``-fold replication (the memory cost the paper cites);
* an SpMM runs the ``R`` broadcast stages split across layers: layer
  ``l`` handles stages ``j`` with ``j mod c == l``, broadcasting ``H^j``
  within its own R-GPU row group and accumulating partials;
* the ``c`` partial results for each row block are then summed with an
  allreduce across the replica-layer groups (the step that crosses the
  DGX-1 quad boundary).

Everything else (GeMM, loss, Adam, weight allreduce) is data-parallel
over the ``R`` row blocks, executed redundantly by every replica layer
— exactly how a replication-based implementation behaves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.comm.collectives import Communicator
from repro.config import FLOAT_DTYPE
from repro.device.engine import SimContext
from repro.device.stream import Event
from repro.device.tensor import DeviceTensor, Mode
from repro.errors import ConfigurationError
from repro.datasets.loader import Dataset, SymbolicDataset
from repro.hardware.machines import dgx1
from repro.hardware.spec import MachineSpec
from repro.kernels.cost import CostModel, KernelCosts
from repro.kernels.ops import (
    adam_step_op,
    gemm,
    relu_backward,
    relu_forward,
    softmax_cross_entropy,
    spmm,
)
from repro.nn.init import init_weights
from repro.nn.model import GCNModelSpec
from repro.core.stats import EpochStats, OpBreakdown
from repro.sparse.csr import CSRMatrix
from repro.sparse.normalize import gcn_normalize
from repro.sparse.partition import uniform_partition, tile_grid
from repro.sparse.permutation import apply_permutation, permute_rows, random_permutation
from repro.sparse.symbolic import SymbolicCSR
from repro.baselines.cagnet import CAGNET_KERNEL_COSTS


class CAGNET15DTrainer:
    """The CAGNET 1.5D algorithm on the simulated machine."""

    def __init__(
        self,
        dataset: Union[Dataset, SymbolicDataset],
        model: GCNModelSpec,
        machine: Optional[MachineSpec] = None,
        num_gpus: Optional[int] = None,
        replication: int = 2,
        lr: float = 1e-2,
        seed: int = 0,
        permute: bool = False,
        kernel_costs: Optional[KernelCosts] = None,
    ):
        machine = machine or dgx1()
        mode = Mode.SYMBOLIC if dataset.is_symbolic else Mode.FUNCTIONAL
        if model.layer_dims[0] != dataset.d0:
            raise ConfigurationError(
                f"model input width {model.layer_dims[0]} != dataset d0 {dataset.d0}"
            )
        P = num_gpus if num_gpus is not None else machine.num_gpus
        c = int(replication)
        if c < 1 or P % c != 0:
            raise ConfigurationError(
                f"replication {c} must divide the GPU count {P}"
            )
        self.dataset = dataset
        self.model = model
        self.lr = lr
        self.c = c
        self.R = P // c
        self.ctx = SimContext(machine, num_gpus=P, mode=mode)
        costs = kernel_costs or CAGNET_KERNEL_COSTS
        self.cost_models = [CostModel(machine.gpu, costs) for _ in range(P)]

        # communicator groups: one per replica layer (row broadcasts) and
        # one per row block (cross-layer reductions).
        self.layer_comms: List[Communicator] = [
            Communicator(self.ctx, ranks=[l * self.R + i for i in range(self.R)])
            for l in range(c)
        ]
        self.replica_comms: List[Communicator] = [
            Communicator(self.ctx, ranks=[l * self.R + i for l in range(c)])
            for i in range(self.R)
        ]
        self.world_comm = Communicator(self.ctx)

        self._build_graph(permute, seed)
        self._build_buffers()
        self._build_weights(seed, mode)
        self._adam_t = 0
        self.epochs_trained = 0

    # -- setup ----------------------------------------------------------------

    def _gpu(self, i: int, l: int) -> int:
        """Flat rank of grid position (row block i, replica layer l)."""
        return l * self.R + i

    def _build_graph(self, permute: bool, seed: int) -> None:
        ds = self.dataset
        self.part = uniform_partition(ds.n, self.R)
        mode = self.ctx.mode
        if mode is Mode.FUNCTIONAL:
            adj = ds.adjacency
            features = ds.features
            labels, train = ds.labels, ds.train_mask
            val, test = ds.val_mask, ds.test_mask
            if permute:
                perm = random_permutation(ds.n, seed=seed)
                adj = apply_permutation(adj, perm)
                features = permute_rows(features, perm)
                labels = permute_rows(labels, perm)
                train = permute_rows(train, perm)
                val = permute_rows(val, perm)
                test = permute_rows(test, perm)
            a_hat = gcn_normalize(adj)
            a_hat_t = a_hat.transpose()
            fwd_tiles = tile_grid(a_hat_t, self.part, self.part)
            bwd_tiles = tile_grid(a_hat, self.part, self.part)
        else:
            def sym_tile(i: int, j: int) -> SymbolicCSR:
                area = self.part.size(i) * self.part.size(j)
                nnz = int(round(ds.m * area / (ds.n * ds.n)))
                return SymbolicCSR((self.part.size(i), self.part.size(j)), nnz)

            fwd_tiles = [[sym_tile(i, j) for j in range(self.R)]
                         for i in range(self.R)]
            bwd_tiles = [[sym_tile(i, j) for j in range(self.R)]
                         for i in range(self.R)]
            features = labels = train = val = test = None

        self.fwd_tiles = fwd_tiles
        self.bwd_tiles = bwd_tiles
        #: features[(i, l)] — the H^i replica on layer l.
        self.features: Dict[int, DeviceTensor] = {}
        self.labels: Dict[int, Optional[np.ndarray]] = {}
        self.train_masks: Dict[int, Optional[np.ndarray]] = {}
        self.val_masks: Dict[int, Optional[np.ndarray]] = {}
        self.test_masks: Dict[int, Optional[np.ndarray]] = {}
        for i in range(self.R):
            r0, r1 = self.part.part(i)
            for l in range(self.c):
                g = self._gpu(i, l)
                dev = self.ctx.device(g)
                if mode is Mode.FUNCTIONAL:
                    self.features[g] = dev.from_numpy(
                        np.ascontiguousarray(features[r0:r1], dtype=FLOAT_DTYPE),
                        name=f"X{i}@{l}", tag="features",
                    )
                    self.labels[g] = labels[r0:r1].copy()
                    self.train_masks[g] = train[r0:r1].copy()
                    self.val_masks[g] = val[r0:r1].copy()
                    self.test_masks[g] = test[r0:r1].copy()
                else:
                    self.features[g] = dev.symbolic(
                        (self.part.size(i), ds.d0), name=f"X{i}@{l}",
                        tag="features",
                    )
                    self.labels[g] = None
                    self.train_masks[g] = None
                    self.val_masks[g] = None
                    self.test_masks[g] = None
                # adjacency replicated per layer (the c-fold memory cost)
                tile_bytes = sum(t.nbytes for t in fwd_tiles[i]) + sum(
                    t.nbytes for t in bwd_tiles[i]
                )
                dev.pool.allocate(tile_bytes, tag="adjacency")

    def _build_buffers(self) -> None:
        dims = self.model.layer_dims
        max_rows = max(self.part.sizes())
        self.ah_bufs: Dict[int, List[DeviceTensor]] = {}
        self.z_bufs: Dict[int, List[DeviceTensor]] = {}
        self.act_bufs: Dict[int, List[DeviceTensor]] = {}
        self.partial: Dict[int, DeviceTensor] = {}
        self.hwg_scratch: Dict[int, DeviceTensor] = {}
        self.hgrad_scratch: Dict[int, DeviceTensor] = {}
        self.bc: Dict[int, DeviceTensor] = {}
        max_d = max(dims)
        for g in range(self.ctx.num_gpus):
            dev = self.ctx.device(g)
            rows = self.part.size(g % self.R)
            self.ah_bufs[g] = [
                dev.empty((rows, dims[l]), name=f"AH{l}", tag="buffer/eager")
                for l in range(self.model.num_layers)
            ]
            self.z_bufs[g] = [
                dev.empty((rows, dims[l + 1]), name=f"Z{l}", tag="buffer/eager")
                for l in range(self.model.num_layers)
            ]
            self.act_bufs[g] = [
                dev.empty((rows, dims[l + 1]), name=f"H{l}", tag="buffer/eager")
                for l in range(self.model.num_layers)
            ]
            self.partial[g] = dev.empty((rows, max_d), name="partial",
                                        tag="buffer/partial")
            self.hwg_scratch[g] = dev.empty((rows, max(dims[1:])), name="HWG",
                                            tag="buffer/grad")
            self.hgrad_scratch[g] = dev.empty((rows, max_d), name="HG",
                                              tag="buffer/grad")
            self.bc[g] = dev.empty((max_rows, max_d), name="BC",
                                   tag="buffer/broadcast")

    def _build_weights(self, seed: int, mode: Mode) -> None:
        dims = self.model.layer_dims
        init = init_weights(dims, seed=seed)
        self.weights: Dict[int, List[DeviceTensor]] = {}
        self.wgrads: Dict[int, List[DeviceTensor]] = {}
        self.adam_m: Dict[int, List[DeviceTensor]] = {}
        self.adam_v: Dict[int, List[DeviceTensor]] = {}
        for g in range(self.ctx.num_gpus):
            dev = self.ctx.device(g)
            w_l, g_l, m_l, v_l = [], [], [], []
            for l in range(self.model.num_layers):
                shape = (dims[l], dims[l + 1])
                if mode is Mode.FUNCTIONAL:
                    w_l.append(dev.from_numpy(init[l].copy(), name=f"W{l}",
                                              tag="weights"))
                    g_l.append(dev.zeros(shape, name=f"WG{l}", tag="weights"))
                    m_l.append(dev.zeros(shape, name=f"m{l}", tag="adam"))
                    v_l.append(dev.zeros(shape, name=f"v{l}", tag="adam"))
                else:
                    w_l.append(dev.symbolic(shape, name=f"W{l}", tag="weights"))
                    g_l.append(dev.symbolic(shape, name=f"WG{l}", tag="weights"))
                    m_l.append(dev.symbolic(shape, name=f"m{l}", tag="adam"))
                    v_l.append(dev.symbolic(shape, name=f"v{l}", tag="adam"))
            self.weights[g] = w_l
            self.wgrads[g] = g_l
            self.adam_m[g] = m_l
            self.adam_v[g] = v_l

    @property
    def mode(self) -> Mode:
        return self.ctx.mode

    def get_weights(self) -> List[np.ndarray]:
        return [w.copy_to_numpy() for w in self.weights[0]]

    # -- the 1.5D distributed SpMM -----------------------------------------------

    def _spmm_15d(
        self,
        tiles: Sequence[Sequence[object]],
        sources: Dict[int, DeviceTensor],
        outputs: Dict[int, DeviceTensor],
        width: int,
        label: str,
    ) -> None:
        """``outputs[(i,*)] = sum_j tiles[i][j] @ sources[(j,*)]``.

        Stages are split across replica layers; partials are reduced
        across the layer groups at the end.
        """
        engine = self.ctx.engine
        R, c = self.R, self.c
        # zero the partial accumulators (first handled stage overwrites,
        # but a layer may handle zero stages when c > R).
        partials: Dict[int, DeviceTensor] = {}
        for g in range(self.ctx.num_gpus):
            rows = self.part.size(g % R)
            view = self.partial[g].view2d(rows, width)
            view.fill_(0.0)
            engine.submit(
                self.ctx.device(g).compute_stream, f"{label}/zero", "memset",
                self.cost_models[g].memset_time(view.nbytes),
            )
            partials[g] = view

        for l in range(c):
            comm = self.layer_comms[l]
            my_stages = [j for j in range(R) if j % c == l]
            prev_spmm: Dict[int, Event] = {}
            for j in my_stages:
                src = sources[self._gpu(j, l)]
                dsts = {
                    self._gpu(i, l): self.bc[self._gpu(i, l)].view2d(
                        src.rows, src.cols
                    )
                    for i in range(R)
                    if i != j
                }
                # single receive buffer per GPU: the next broadcast must
                # wait until the previous stage's SpMM finished reading
                # it (CAGNET has no double buffering).
                bcast_deps = {g: [ev] for g, ev in prev_spmm.items()}
                events = comm.broadcast(
                    root=self._gpu(j, l), src=src, dsts=dsts,
                    deps_by_rank=bcast_deps,
                    stage=j, name=f"{label}/bcast[{j}]",
                )
                for i in range(R):
                    g = self._gpu(i, l)
                    operand = src if i == j else dsts[g]
                    ev = spmm(
                        engine, self.cost_models[g],
                        self.ctx.device(g).compute_stream,
                        tiles[i][j], operand, partials[g],
                        accumulate=True, deps=[events[g]],
                        stage=j, name=f"{label}[{j}]",
                    )
                    prev_spmm[g] = ev

        # reduce partials across replica layers, result on every replica.
        for i in range(R):
            self.replica_comms[i].allreduce(
                {self._gpu(i, l): partials[self._gpu(i, l)] for l in range(c)},
                op="sum", name=f"{label}/reduce",
            )
        # copy the reduced partial into the destination buffers
        for g in range(self.ctx.num_gpus):
            out = outputs[g]
            if out.data is not None:
                np.copyto(out.data, partials[g].data)
            engine.submit(
                self.ctx.device(g).compute_stream, f"{label}/copy", "memset",
                self.cost_models[g].memset_time(out.nbytes),
            )

    # -- passes --------------------------------------------------------------------

    def _forward(self) -> List[Dict[int, DeviceTensor]]:
        engine = self.ctx.engine
        L = self.model.num_layers
        inputs: Dict[int, DeviceTensor] = dict(self.features)
        outputs: List[Dict[int, DeviceTensor]] = []
        for l in range(L):
            d_in, d_out = self.model.dims_of(l)
            ah = {g: self.ah_bufs[g][l] for g in range(self.ctx.num_gpus)}
            self._spmm_15d(self.fwd_tiles, inputs, ah, d_in, f"fwd{l}/spmm")
            outs: Dict[int, DeviceTensor] = {}
            for g in range(self.ctx.num_gpus):
                z = self.z_bufs[g][l]
                gemm(engine, self.cost_models[g],
                     self.ctx.device(g).compute_stream,
                     ah[g], self.weights[g][l], z, name=f"fwd{l}/gemm")
                if l < L - 1:
                    act = self.act_bufs[g][l]
                    if z.data is not None:
                        np.maximum(z.data, 0.0, out=act.data)
                    engine.submit(
                        self.ctx.device(g).compute_stream, f"fwd{l}/relu",
                        "activation",
                        self.cost_models[g].elementwise_time(z.size, 1, 1),
                    )
                    outs[g] = act
                else:
                    outs[g] = z
            outputs.append(outs)
            inputs = outs
        return outputs

    def _loss(self, logits: Dict[int, DeviceTensor],
              grads: Dict[int, DeviceTensor]) -> Optional[float]:
        total = 0.0
        num_train = self.dataset.num_train
        for g in range(self.ctx.num_gpus):
            local, _ = softmax_cross_entropy(
                self.ctx.engine, self.cost_models[g],
                self.ctx.device(g).compute_stream,
                logits[g], self.labels[g], self.train_masks[g],
                grad_out=grads[g], total_train=num_train, name="loss",
            )
            if g < self.R:  # count each row block once
                total += local
        if self.mode is Mode.SYMBOLIC:
            return None
        return total / num_train

    def _backward(self, outputs: List[Dict[int, DeviceTensor]],
                  grads: Dict[int, DeviceTensor]) -> None:
        engine = self.ctx.engine
        L = self.model.num_layers
        self._adam_t += 1
        for l in range(L - 1, -1, -1):
            d_in, d_out = self.model.dims_of(l)
            if l < L - 1:
                for g in range(self.ctx.num_gpus):
                    relu_backward(
                        engine, self.cost_models[g],
                        self.ctx.device(g).compute_stream,
                        grads[g], outputs[l][g], name=f"bwd{l}/relu",
                    )
            hwg = {
                g: self.hwg_scratch[g].view2d(self.part.size(g % self.R), d_out)
                for g in range(self.ctx.num_gpus)
            }
            self._spmm_15d(self.bwd_tiles, grads, hwg, d_out, f"bwd{l}/spmm")
            wg_events: Dict[int, List[Event]] = {}
            for g in range(self.ctx.num_gpus):
                h_in = self.features[g] if l == 0 else outputs[l - 1][g]
                ev = gemm(
                    engine, self.cost_models[g],
                    self.ctx.device(g).compute_stream,
                    h_in, hwg[g], self.wgrads[g][l],
                    transpose_a=True, name=f"bwd{l}/wgrad",
                )
                wg_events[g] = [ev]
            new_grads: Dict[int, DeviceTensor] = {}
            if l > 0:
                for g in range(self.ctx.num_gpus):
                    hg = self.hgrad_scratch[g].view2d(
                        self.part.size(g % self.R), d_in
                    )
                    gemm(
                        engine, self.cost_models[g],
                        self.ctx.device(g).compute_stream,
                        hwg[g], self.weights[g][l], hg,
                        transpose_b=True, name=f"bwd{l}/hgrad",
                    )
                    new_grads[g] = hg
            # the weight gradient must sum each row block once; replicas
            # computed identical partials, so allreduce with mean over
            # layers x sum over rows == sum over blocks.
            allred = self.world_comm.allreduce(
                {g: self.wgrads[g][l] for g in range(self.ctx.num_gpus)},
                op="sum", deps_by_rank=wg_events, name=f"bwd{l}/allreduce_wg",
            )
            for g in range(self.ctx.num_gpus):
                # replicas double count: rescale by 1/c
                wgrad = self.wgrads[g][l]
                if wgrad.data is not None:
                    wgrad.data /= self.c
                engine.submit(
                    self.ctx.device(g).compute_stream, f"bwd{l}/rescale",
                    "elementwise",
                    self.cost_models[g].elementwise_time(wgrad.size, 1, 1),
                    deps=[allred[g]],
                )
                self._adam(g, l)
            if l > 0:
                grads = new_grads

    def _adam(self, g: int, layer: int) -> None:
        stream = self.ctx.device(g).compute_stream
        w = self.weights[g][layer]
        if self.mode is Mode.FUNCTIONAL:
            adam_step_op(
                self.ctx.engine, self.cost_models[g], stream,
                w.data, self.wgrads[g][layer].data,
                self.adam_m[g][layer].data, self.adam_v[g][layer].data,
                t=self._adam_t, lr=self.lr, beta1=0.9, beta2=0.999, eps=1e-8,
                name=f"adam{layer}",
            )
        else:
            self.ctx.engine.submit(
                stream, f"adam{layer}", "adam",
                self.cost_models[g].adam_time(w.size),
            )

    # -- epochs ------------------------------------------------------------------------

    def train_epoch(self) -> EpochStats:
        t0 = self.ctx.synchronize()
        trace_start = len(self.ctx.engine.trace)
        outputs = self._forward()
        grads = {
            g: self.hgrad_scratch[g].view2d(
                self.part.size(g % self.R), self.model.layer_dims[-1]
            )
            for g in range(self.ctx.num_gpus)
        }
        loss = self._loss(outputs[-1], grads)
        self._backward(outputs, grads)
        t1 = self.ctx.synchronize()
        trace = self.ctx.engine.trace[trace_start:]
        self.epochs_trained += 1
        return EpochStats(
            epoch_time=t1 - t0,
            loss=loss,
            breakdown=OpBreakdown.from_trace(trace),
            peak_memory=self.ctx.peak_memory(),
            trace=list(trace),
        )

    def fit(self, epochs: int) -> List[EpochStats]:
        if epochs < 0:
            raise ConfigurationError(f"epochs must be >= 0, got {epochs}")
        return [self.train_epoch() for _ in range(epochs)]

    def evaluate(self, split: str = "test") -> float:
        """Accuracy over ``split``; reads layer-0 replicas (functional only)."""
        if self.mode is not Mode.FUNCTIONAL:
            raise ConfigurationError("evaluate() requires functional mode")
        masks = {
            "train": self.train_masks,
            "val": self.val_masks,
            "test": self.test_masks,
        }
        if split not in masks:
            raise ConfigurationError(f"unknown split {split!r}")
        logits = self._forward()[-1]
        correct = 0
        count = 0
        for i in range(self.R):
            g = self._gpu(i, 0)
            mask = masks[split][g]
            if mask is None or not mask.any():
                continue
            pred = np.argmax(logits[g].data[mask], axis=1)
            correct += int((pred == self.labels[g][mask]).sum())
            count += int(mask.sum())
        if count == 0:
            raise ConfigurationError(f"empty {split!r} split")
        return correct / count
