"""CAGNET-like multi-GPU trainers and the Section 5.1 1.5D analysis.

CAGNET (Tripathy et al., SC'20) implements the same 1D row-distributed
algorithm MG-GCN uses, but — per the paper's comparison — with the
behaviours that cost it performance and memory:

* **no vertex permutation** (uniform tiles over the original ordering,
  so hub-concentrated graphs load-imbalance the stages);
* **no communication/computation overlap** (stages serialise);
* **always aggregate-first** — it broadcasts ``H`` (``d_in`` wide) and
  computes ``(A H) W``, even when ``d_out`` is far narrower;
* **no buffer reuse and no layer-0 backward skip** — PyTorch autograd
  materialises and retains the per-op intermediates;
* PyTorch-level per-op overhead and less-tuned kernels.

The 1.5D algorithm is modelled analytically (:func:`cagnet_15d_comm_time`)
exactly the way Section 5.1 reasons about it: broadcasts inside
replication groups at the group's aggregate link bandwidth plus an
inter-group reduction across the bisection links.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.comm.collectives import Communicator
from repro.device.engine import SimContext
from repro.device.stream import Event
from repro.device.tensor import DeviceTensor, Mode
from repro.errors import ConfigurationError
from repro.datasets.loader import Dataset, SymbolicDataset
from repro.hardware.machines import dgx1
from repro.hardware.spec import MachineSpec
from repro.hardware.topology import Topology
from repro.kernels.cost import CostModel, KernelCosts
from repro.kernels.ops import (
    adam_step_op,
    gemm,
    relu_backward,
    relu_forward,
    softmax_cross_entropy,
    spmm,
)
from repro.nn.init import init_weights
from repro.nn.model import GCNModelSpec
from repro.core.partitioner import DistributedGraph, partition_dataset
from repro.core.spmm_mg import distributed_spmm
from repro.core.stats import EpochStats, OpBreakdown

#: Kernel-efficiency knobs modelling CAGNET's PyTorch(+custom-kernel) stack.
CAGNET_KERNEL_COSTS = KernelCosts(
    gemm_flop_efficiency=0.65,
    stream_bw_efficiency=0.80,
    spmm_bw_efficiency=0.50,
    spmm_cache_hit_max=0.50,
    framework_overhead=25e-6,
)


class _SingleBufferAdapter:
    """Presents one broadcast buffer through the bc_view protocol."""

    def __init__(self, bc: DeviceTensor):
        self._bc = bc

    def bc_view(self, index: int, rows: int, cols: int) -> DeviceTensor:
        return self._bc.view2d(rows, cols)


class CAGNETTrainer:
    """The CAGNET 1D algorithm on the simulated machine."""

    def __init__(
        self,
        dataset: Union[Dataset, SymbolicDataset],
        model: GCNModelSpec,
        machine: Optional[MachineSpec] = None,
        num_gpus: Optional[int] = None,
        lr: float = 1e-2,
        seed: int = 0,
        permute: bool = False,
        kernel_costs: Optional[KernelCosts] = None,
    ):
        self.dataset = dataset
        self.model = model
        self.lr = lr
        machine = machine or dgx1()
        mode = Mode.SYMBOLIC if dataset.is_symbolic else Mode.FUNCTIONAL
        if model.layer_dims[0] != dataset.d0:
            raise ConfigurationError(
                f"model input width {model.layer_dims[0]} != dataset d0 {dataset.d0}"
            )
        self.ctx = SimContext(machine, num_gpus=num_gpus, mode=mode)
        P = self.ctx.num_gpus
        self.graph: DistributedGraph = partition_dataset(
            self.ctx, dataset, permute=permute, seed=seed
        )
        costs = kernel_costs or CAGNET_KERNEL_COSTS
        self.cost_models: List[CostModel] = [
            CostModel(machine.gpu, costs) for _ in range(P)
        ]
        self.comm = Communicator(self.ctx)

        # CAGNET stages the *full* graph on every device while slicing its
        # block rows: an int64 COO plus the coalesce copy (~40 B/nnz).
        # This transient reservation is what keeps the Proteins dataset
        # from running under CAGNET at any GPU count (paper §6.5); the
        # peak-memory meter sees it even though it is freed immediately.
        total_nnz = dataset.m
        for i in range(P):
            staging = self.ctx.device(i).pool.allocate(
                int(total_nnz) * 40, tag="staging/full-graph-coo"
            )
            staging.free()

        dims = model.layer_dims
        max_rows = self.graph.max_part_rows
        self._bc_adapters: List[_SingleBufferAdapter] = []
        # Eager buffers: AH (d_in wide!), Z and activation per layer stay
        # live for autograd; backward grads use two rotating scratches
        # (torch frees consumed grads); one broadcast buffer sized for
        # the widest thing CAGNET ever sends (H itself, d0 included).
        self.ah_bufs: List[List[DeviceTensor]] = []
        self.z_bufs: List[List[DeviceTensor]] = []
        self.act_bufs: List[List[DeviceTensor]] = []
        self.hwg_scratch: List[DeviceTensor] = []
        self.hgrad_scratch: List[DeviceTensor] = []
        max_din = max(dims[:-1])
        max_dout = max(dims[1:])
        for i in range(P):
            dev = self.ctx.device(i)
            rows = self.graph.local_rows(i)
            self.ah_bufs.append(
                [
                    dev.empty((rows, dims[l]), name=f"AH{l}", tag="buffer/eager")
                    for l in range(model.num_layers)
                ]
            )
            self.z_bufs.append(
                [
                    dev.empty((rows, dims[l + 1]), name=f"Z{l}", tag="buffer/eager")
                    for l in range(model.num_layers)
                ]
            )
            self.act_bufs.append(
                [
                    dev.empty((rows, dims[l + 1]), name=f"H{l}", tag="buffer/eager")
                    for l in range(model.num_layers)
                ]
            )
            self.hwg_scratch.append(
                dev.empty((rows, max_dout), name="HWG", tag="buffer/grad")
            )
            self.hgrad_scratch.append(
                dev.empty(
                    (rows, max(max_din, max_dout)), name="HG", tag="buffer/grad"
                )
            )
            if P > 1:
                bc = dev.empty((max_rows, max(dims)), name="BC", tag="buffer/broadcast")
            else:
                bc = dev.empty((1, 1), name="BC", tag="buffer/broadcast")
            self._bc_adapters.append(_SingleBufferAdapter(bc))

        init = init_weights(dims, seed=seed)
        self.weights: List[List[DeviceTensor]] = []
        self.wgrads: List[List[DeviceTensor]] = []
        self.adam_m: List[List[DeviceTensor]] = []
        self.adam_v: List[List[DeviceTensor]] = []
        for i in range(P):
            dev = self.ctx.device(i)
            w_l, g_l, m_l, v_l = [], [], [], []
            for l in range(model.num_layers):
                shape = (dims[l], dims[l + 1])
                if mode is Mode.FUNCTIONAL:
                    w_l.append(dev.from_numpy(init[l].copy(), name=f"W{l}", tag="weights"))
                    g_l.append(dev.zeros(shape, name=f"WG{l}", tag="weights"))
                    m_l.append(dev.zeros(shape, name=f"m{l}", tag="adam"))
                    v_l.append(dev.zeros(shape, name=f"v{l}", tag="adam"))
                else:
                    w_l.append(dev.symbolic(shape, name=f"W{l}", tag="weights"))
                    g_l.append(dev.symbolic(shape, name=f"WG{l}", tag="weights"))
                    m_l.append(dev.symbolic(shape, name=f"m{l}", tag="adam"))
                    v_l.append(dev.symbolic(shape, name=f"v{l}", tag="adam"))
            self.weights.append(w_l)
            self.wgrads.append(g_l)
            self.adam_m.append(m_l)
            self.adam_v.append(v_l)
        self._adam_t = 0
        self.epochs_trained = 0

    @property
    def mode(self) -> Mode:
        return self.ctx.mode

    def get_weights(self) -> List[np.ndarray]:
        return [w.copy_to_numpy() for w in self.weights[0]]

    # -- passes --------------------------------------------------------------------

    def _forward(self) -> List[List[DeviceTensor]]:
        P = self.ctx.num_gpus
        engine = self.ctx.engine
        inputs: Sequence[DeviceTensor] = self.graph.features
        outputs: List[List[DeviceTensor]] = []
        L = self.model.num_layers
        for l in range(L):
            d_in, d_out = self.model.dims_of(l)
            ah = [self.ah_bufs[i][l] for i in range(P)]
            # aggregate first, always: broadcast H (d_in wide).
            distributed_spmm(
                self.ctx,
                self.comm,
                self.cost_models,
                self.graph.forward_tiles,
                list(inputs),
                ah,
                self._bc_adapters,
                overlap=False,
                label=f"fwd{l}/spmm",
            )
            outs = []
            for i in range(P):
                z = self.z_bufs[i][l]
                gemm(
                    engine, self.cost_models[i],
                    self.ctx.device(i).compute_stream,
                    ah[i], self.weights[i][l], z, name=f"fwd{l}/gemm",
                )
                if l < L - 1:
                    act = self.act_bufs[i][l]
                    if z.data is not None:
                        np.maximum(z.data, 0.0, out=act.data)
                    engine.submit(
                        self.ctx.device(i).compute_stream,
                        f"fwd{l}/relu", "activation",
                        self.cost_models[i].elementwise_time(z.size, reads=1, writes=1),
                    )
                    outs.append(act)
                else:
                    outs.append(z)
            outputs.append(outs)
            inputs = outs
        return outputs

    def _loss(self, logits: Sequence[DeviceTensor],
              grads: Sequence[DeviceTensor]) -> Optional[float]:
        P = self.ctx.num_gpus
        total = 0.0
        for i in range(P):
            stream = self.ctx.device(i).compute_stream
            self.ctx.engine.submit(
                stream, "loss/log_softmax", "loss",
                self.cost_models[i].softmax_xent_time(logits[i].rows, logits[i].cols),
            )
            local, _ = softmax_cross_entropy(
                self.ctx.engine, self.cost_models[i], stream,
                logits[i], self.graph.labels[i], self.graph.train_masks[i],
                grad_out=grads[i], total_train=self.graph.num_train,
                name="loss/grad",
            )
            total += local
        if self.mode is Mode.SYMBOLIC:
            return None
        return total / self.graph.num_train

    def _backward(self, outputs: List[List[DeviceTensor]],
                  grads: Sequence[DeviceTensor]) -> None:
        P = self.ctx.num_gpus
        engine = self.ctx.engine
        L = self.model.num_layers
        self._adam_t += 1
        for l in range(L - 1, -1, -1):
            d_in, d_out = self.model.dims_of(l)
            if l < L - 1:
                for i in range(P):
                    relu_backward(
                        engine, self.cost_models[i],
                        self.ctx.device(i).compute_stream,
                        grads[i], outputs[l][i], name=f"bwd{l}/relu",
                    )
            hwg = [self.hwg_scratch[i].view2d(self.graph.local_rows(i), d_out)
                   for i in range(P)]
            # autograd always runs the backward SpMM, including layer 0.
            distributed_spmm(
                self.ctx,
                self.comm,
                self.cost_models,
                self.graph.backward_tiles,
                list(grads),
                hwg,
                self._bc_adapters,
                overlap=False,
                label=f"bwd{l}/spmm",
            )
            wg_events: Dict[int, List[Event]] = {}
            for i in range(P):
                h_in = (self.graph.features[i] if l == 0
                        else outputs[l - 1][i])
                ev = gemm(
                    engine, self.cost_models[i],
                    self.ctx.device(i).compute_stream,
                    h_in, hwg[i], self.wgrads[i][l],
                    transpose_a=True, name=f"bwd{l}/wgrad",
                )
                wg_events[i] = [ev]
            new_grads: List[DeviceTensor] = []
            if l > 0:
                for i in range(P):
                    hg = self.hgrad_scratch[i].view2d(
                        self.graph.local_rows(i), d_in
                    )
                    gemm(
                        engine, self.cost_models[i],
                        self.ctx.device(i).compute_stream,
                        hwg[i], self.weights[i][l], hg,
                        transpose_b=True, name=f"bwd{l}/hgrad",
                    )
                    new_grads.append(hg)
            allreduce_events = self.comm.allreduce(
                {i: self.wgrads[i][l] for i in range(P)},
                op="sum", deps_by_rank=wg_events, name=f"bwd{l}/allreduce_wg",
            )
            for i in range(P):
                self._adam(i, l, deps=[allreduce_events[i]])
            if l > 0:
                grads = new_grads

    def _adam(self, rank: int, layer: int, deps: Sequence[Event]) -> None:
        stream = self.ctx.device(rank).compute_stream
        w = self.weights[rank][layer]
        if self.mode is Mode.FUNCTIONAL:
            adam_step_op(
                self.ctx.engine, self.cost_models[rank], stream,
                w.data, self.wgrads[rank][layer].data,
                self.adam_m[rank][layer].data, self.adam_v[rank][layer].data,
                t=self._adam_t, lr=self.lr, beta1=0.9, beta2=0.999, eps=1e-8,
                deps=deps, name=f"adam{layer}",
            )
        else:
            self.ctx.engine.submit(
                stream, f"adam{layer}", "adam",
                self.cost_models[rank].adam_time(w.size), deps=deps,
            )

    # -- epochs ----------------------------------------------------------------------

    def train_epoch(self) -> EpochStats:
        t0 = self.ctx.synchronize()
        trace_start = len(self.ctx.engine.trace)
        outputs = self._forward()
        P = self.ctx.num_gpus
        grads = [
            self.hgrad_scratch[i].view2d(
                self.graph.local_rows(i), self.model.layer_dims[-1]
            )
            for i in range(P)
        ]
        loss = self._loss(outputs[-1], grads)
        self._backward(outputs, grads)
        t1 = self.ctx.synchronize()
        trace = self.ctx.engine.trace[trace_start:]
        self.epochs_trained += 1
        return EpochStats(
            epoch_time=t1 - t0,
            loss=loss,
            breakdown=OpBreakdown.from_trace(trace),
            peak_memory=self.ctx.peak_memory(),
            trace=list(trace),
        )

    def fit(self, epochs: int) -> List[EpochStats]:
        if epochs < 0:
            raise ConfigurationError(f"epochs must be >= 0, got {epochs}")
        return [self.train_epoch() for _ in range(epochs)]


# ---------------------------------------------------------------------------
# Section 5.1: analytic 1D vs 1.5D communication costs
# ---------------------------------------------------------------------------


def cagnet_1d_comm_time(
    machine: MachineSpec, n: int, d: int, num_gpus: Optional[int] = None,
    itemsize: int = 4,
) -> float:
    """Per-SpMM communication of the 1D algorithm (Section 5.1).

    ``P`` stages each broadcast an ``(n/P) x d`` tile at the collective
    bandwidth of the full GPU set — the paper's ``P * nd/(P * B)`` term.
    """
    P = num_gpus or machine.num_gpus
    if P <= 1:
        return 0.0
    topo = Topology(machine)
    ranks = list(range(P))
    bw = topo.collective_bandwidth(ranks)
    tile_bytes = (n / P) * d * itemsize
    return P * (tile_bytes / bw)


def cagnet_15d_comm_time(
    machine: MachineSpec, n: int, d: int, num_gpus: Optional[int] = None,
    replication: int = 2, itemsize: int = 4,
) -> float:
    """Per-SpMM communication of the 1.5D algorithm with factor ``c``.

    GPUs form ``c`` replica groups of ``P/c``; each group runs ``P/c``
    broadcasts of ``(n/(P/c)) / c``... following the paper's accounting:
    two rounds of group-local broadcasts of ``n d / (P/c)``-row tiles,
    then a concurrent reduction of each GPU's ``n/(P/c)`` rows across the
    ``c`` replicas over the bisection links.
    """
    P = num_gpus or machine.num_gpus
    c = replication
    if P % c != 0 or c < 1:
        raise ConfigurationError(f"replication {c} must divide num_gpus {P}")
    if P <= 1 or c == 1:
        return cagnet_1d_comm_time(machine, n, d, P, itemsize)
    topo = Topology(machine)
    group_size = P // c
    group = list(range(group_size))
    group_bw = topo.collective_bandwidth(group)
    # P/c stages per round, c rounds run concurrently on disjoint groups;
    # total broadcast volume per GPU: (P/c) tiles of (n/(P/c)) x d / c.
    tile_bytes = (n / group_size) * d * itemsize
    bcast_time = (group_size / c) * (tile_bytes / group_bw)
    # inter-replica reduction: each GPU reduces its n/(P/c) x d rows with
    # its c-1 counterparts across the group boundary.
    other_group = list(range(group_size, min(2 * group_size, machine.num_gpus)))
    pair_bw = topo.bisection_bandwidth(group, other_group) / group_size
    reduce_time = (c - 1) * (tile_bytes / c) / pair_bw
    return bcast_time + reduce_time
