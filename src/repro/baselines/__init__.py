"""Baseline systems the paper compares against, on the same substrate."""

from repro.baselines.dgl_like import DGLLikeTrainer, DGL_KERNEL_COSTS
from repro.baselines.cagnet import (
    CAGNETTrainer,
    CAGNET_KERNEL_COSTS,
    cagnet_1d_comm_time,
    cagnet_15d_comm_time,
)
from repro.baselines.cagnet15d import CAGNET15DTrainer
from repro.baselines.cagnet2d import CAGNET2DTrainer
from repro.baselines.distgnn import DISTGNN_RESULTS, distgnn_best, distgnn_single_socket

__all__ = [
    "DGLLikeTrainer",
    "DGL_KERNEL_COSTS",
    "CAGNETTrainer",
    "CAGNET15DTrainer",
    "CAGNET2DTrainer",
    "CAGNET_KERNEL_COSTS",
    "cagnet_1d_comm_time",
    "cagnet_15d_comm_time",
    "DISTGNN_RESULTS",
    "distgnn_best",
    "distgnn_single_socket",
]
