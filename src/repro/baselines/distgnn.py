"""DistGNN comparison data (Table 2 of the paper).

DistGNN's source was not available to the MG-GCN authors either; the
paper compares against the numbers *reported* in the DistGNN paper
(Md et al., 2021), baseline (exact, 0-communication-avoidance) variant.
We register those numbers and reproduce the paper's derived quantities:
the best-socket-count speedup ratios of §6.6 and the back-of-the-
envelope energy comparison.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import DatasetError

#: Table 2: epoch time in seconds, keyed by dataset -> #sockets.
#: ``None`` cells were not reported.
DISTGNN_RESULTS: Dict[str, Dict[int, float]] = {
    "reddit": {1: 0.60, 16: 0.61},
    "papers": {1: 1000.0, 128: 36.45},
    "products": {1: 11.0, 64: 1.74},
    "proteins": {1: 100.0, 64: 2.63},
}

#: The §6.6 speedup ratios the paper reports for MG-GCN (8 GPUs) over
#: DistGNN's best configuration.
PAPER_SPEEDUP_VS_DISTGNN: Dict[str, float] = {
    "reddit": 40.0,
    "papers": 12.6,
    "products": 12.4,
    "proteins": 1.77,
}

#: TDP used by the paper's energy analysis, watts.
XEON_9242_TDP = 350.0
A100_TDP = 400.0


def distgnn_single_socket(dataset: str) -> float:
    """Reported single-socket epoch time, seconds."""
    key = dataset.lower()
    if key not in DISTGNN_RESULTS:
        raise DatasetError(
            f"no DistGNN result for {dataset!r}; have {sorted(DISTGNN_RESULTS)}"
        )
    return DISTGNN_RESULTS[key][1]


def distgnn_best(dataset: str) -> Tuple[int, float]:
    """(socket count, epoch time) of DistGNN's best reported configuration."""
    key = dataset.lower()
    if key not in DISTGNN_RESULTS:
        raise DatasetError(
            f"no DistGNN result for {dataset!r}; have {sorted(DISTGNN_RESULTS)}"
        )
    sockets, time = min(DISTGNN_RESULTS[key].items(), key=lambda kv: kv[1])
    return sockets, time


def energy_ratio(
    distgnn_sockets: int,
    distgnn_time: float,
    mggcn_gpus: int,
    mggcn_time: float,
    hidden_scale: float = 1.0,
) -> float:
    """The paper's §6.6 energy comparison.

    ``TDP x devices x time`` on each side; ``hidden_scale`` adjusts for a
    different hidden width (the paper scales by 208/256 on Papers). The
    paper's headline value is ~143x in favour of the GPUs.
    """
    if min(distgnn_sockets, mggcn_gpus) <= 0:
        raise ValueError("device counts must be positive")
    if min(distgnn_time, mggcn_time) <= 0:
        raise ValueError("epoch times must be positive")
    cpu_energy = XEON_9242_TDP * distgnn_sockets * distgnn_time
    gpu_energy = A100_TDP * mggcn_gpus * mggcn_time
    return cpu_energy / gpu_energy * hidden_scale
