"""A DGL-like single-GPU full-batch GCN trainer.

Models how DGL 0.7 executes the same model, with the behaviours the
paper's comparisons hinge on:

* **eager buffers** — SpMM, GeMM and activation outputs are separate
  live tensors per layer (autograd keeps them for backward), so memory
  grows ~3 feature-sized buffers per layer (Fig. 12's DGL curve);
* **no fusion** — ReLU is out-of-place, its backward is a separate
  elementwise op, and the loss is several unfused kernels;
* **no first-layer skip** — autograd runs the layer-0 backward SpMM;
* **framework overhead** — Python dispatch and autograd bookkeeping add
  a fixed per-op cost;
* **less-tuned sparse kernels** — DGL's generalised SpMM reaches a lower
  fraction of bandwidth than cuSPARSE CSR and caches gathers worse.

DGL's ``GraphConv`` *does* pick aggregate-first vs matmul-first by
feature widths, so order selection stays on.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.device.engine import SimContext
from repro.device.tensor import DeviceTensor, Mode
from repro.errors import ConfigurationError
from repro.datasets.loader import Dataset, SymbolicDataset
from repro.hardware.machines import single_gpu
from repro.hardware.spec import GPUSpec, MachineSpec
from repro.kernels.cost import CostModel, KernelCosts
from repro.kernels.ops import (
    adam_step_op,
    gemm,
    relu_backward,
    softmax_cross_entropy,
    spmm,
)
from repro.nn.buffers import EagerBufferManager
from repro.nn.init import init_weights
from repro.nn.model import GCNModelSpec
from repro.core.order import ComputeOrder, choose_forward_order
from repro.core.stats import EpochStats, OpBreakdown
from repro.sparse.csr import CSRMatrix
from repro.sparse.normalize import gcn_normalize
from repro.sparse.symbolic import SymbolicCSR

#: Kernel-efficiency knobs modelling DGL 0.7's measured behaviour.
DGL_KERNEL_COSTS = KernelCosts(
    gemm_flop_efficiency=0.65,
    stream_bw_efficiency=0.78,
    spmm_bw_efficiency=0.55,
    spmm_cache_hit_max=0.60,
    framework_overhead=1e-4,
)


class DGLLikeTrainer:
    """Single-GPU full-batch GCN the way DGL runs it."""

    def __init__(
        self,
        dataset: Union[Dataset, SymbolicDataset],
        model: GCNModelSpec,
        gpu: Optional[GPUSpec] = None,
        machine: Optional[MachineSpec] = None,
        lr: float = 1e-2,
        seed: int = 0,
        kernel_costs: Optional[KernelCosts] = None,
    ):
        if machine is not None:
            gpu = machine.gpu
        if gpu is None:
            raise ConfigurationError("DGLLikeTrainer needs a gpu or machine")
        if model.layer_dims[0] != dataset.d0:
            raise ConfigurationError(
                f"model input width {model.layer_dims[0]} != dataset d0 {dataset.d0}"
            )
        self.dataset = dataset
        self.model = model
        self.lr = lr
        mode = Mode.SYMBOLIC if dataset.is_symbolic else Mode.FUNCTIONAL
        self.ctx = SimContext(single_gpu(gpu, name="dgl-gpu"), num_gpus=1, mode=mode)
        self.dev = self.ctx.device(0)
        self.cost = CostModel(gpu, kernel_costs or DGL_KERNEL_COSTS)

        # adjacency (both directions: autograd needs the backward SpMM)
        if mode is Mode.FUNCTIONAL:
            self.a_hat: Union[CSRMatrix, SymbolicCSR] = gcn_normalize(
                dataset.adjacency
            )
            self.a_hat_t: Union[CSRMatrix, SymbolicCSR] = self.a_hat.transpose()
        else:
            self.a_hat = SymbolicCSR((dataset.n, dataset.n), dataset.m)
            self.a_hat_t = self.a_hat.transpose()
        self._adj_alloc = self.dev.pool.allocate(
            self.a_hat.nbytes + self.a_hat_t.nbytes, tag="adjacency"
        )

        # features
        if mode is Mode.FUNCTIONAL:
            self.features = self.dev.from_numpy(
                dataset.features, name="X", tag="features"
            )
        else:
            self.features = self.dev.symbolic(
                (dataset.n, dataset.d0), name="X", tag="features"
            )

        # eager per-layer buffers: [HW, AHW, H'] all live (autograd graph).
        self.buffers = EagerBufferManager(
            self.dev,
            local_rows=dataset.n,
            layer_dims=model.layer_dims,
            buffers_per_layer=3,
        )
        # two backward scratch tensors (autograd's transient grads).
        max_d = max(model.layer_dims[1:])
        self._scratch = [
            self.dev.empty((dataset.n, max_d), name=f"grad{i}", tag="buffer/grad")
            if mode is Mode.FUNCTIONAL
            else self.dev.symbolic((dataset.n, max_d), name=f"grad{i}", tag="buffer/grad")
            for i in range(2)
        ]

        init = init_weights(model.layer_dims, seed=seed)
        self.weights: List[DeviceTensor] = []
        self.wgrads: List[DeviceTensor] = []
        self.adam_m: List[DeviceTensor] = []
        self.adam_v: List[DeviceTensor] = []
        for l in range(model.num_layers):
            shape = (model.layer_dims[l], model.layer_dims[l + 1])
            if mode is Mode.FUNCTIONAL:
                self.weights.append(
                    self.dev.from_numpy(init[l].copy(), name=f"W{l}", tag="weights")
                )
                self.wgrads.append(self.dev.zeros(shape, name=f"WG{l}", tag="weights"))
                self.adam_m.append(self.dev.zeros(shape, name=f"m{l}", tag="adam"))
                self.adam_v.append(self.dev.zeros(shape, name=f"v{l}", tag="adam"))
            else:
                self.weights.append(self.dev.symbolic(shape, name=f"W{l}", tag="weights"))
                self.wgrads.append(self.dev.symbolic(shape, name=f"WG{l}", tag="weights"))
                self.adam_m.append(self.dev.symbolic(shape, name=f"m{l}", tag="adam"))
                self.adam_v.append(self.dev.symbolic(shape, name=f"v{l}", tag="adam"))
        self._adam_t = 0
        self.epochs_trained = 0

    @property
    def mode(self) -> Mode:
        return self.ctx.mode

    def get_weights(self) -> List[np.ndarray]:
        return [w.copy_to_numpy() for w in self.weights]

    # -- passes -------------------------------------------------------------------

    def _forward(self) -> List[DeviceTensor]:
        """Per-layer activations; each op lands in its own eager buffer."""
        engine = self.ctx.engine
        stream = self.dev.compute_stream
        L = self.model.num_layers
        h = self.features
        outputs: List[DeviceTensor] = []
        for l in range(L):
            d_in, d_out = self.model.dims_of(l)
            order = choose_forward_order(d_in, d_out, True)
            buf_a = self.buffers.layer_buffer(l, 0)
            buf_b = self.buffers.layer_buffer(l, 1)
            buf_act = self.buffers.layer_buffer(l, 2)
            if order is ComputeOrder.GEMM_FIRST:
                hw = buf_a
                gemm(engine, self.cost, stream, h, self.weights[l], hw,
                     name=f"fwd{l}/gemm")
                spmm(engine, self.cost, stream, self.a_hat_t, hw, buf_b,
                     accumulate=False, name=f"fwd{l}/spmm")
            else:
                # aggregate first: AH uses a d_in-wide view of buffer A
                # aggregate-first is chosen only when d_in < d_out, so the
                # d_out-wide layer buffer always fits the AH intermediate.
                ah = buf_a.view2d(buf_a.rows, d_in)
                spmm(engine, self.cost, stream, self.a_hat_t, h, ah,
                     accumulate=False, name=f"fwd{l}/spmm")
                gemm(engine, self.cost, stream, ah, self.weights[l], buf_b,
                     name=f"fwd{l}/gemm")
            if l < L - 1:
                # out-of-place ReLU (no fusion): read buf_b, write buf_act.
                if buf_b.data is not None:
                    np.maximum(buf_b.data, 0.0, out=buf_act.data)
                engine.submit(
                    stream, f"fwd{l}/relu", "activation",
                    self.cost.elementwise_time(buf_b.size, reads=1, writes=1),
                )
                h = buf_act
            else:
                h = buf_b
            outputs.append(h)
        return outputs

    def _loss(self, logits: DeviceTensor, grad_out: DeviceTensor) -> Optional[float]:
        """Unfused loss: softmax, reduction, then the gradient kernel."""
        engine = self.ctx.engine
        stream = self.dev.compute_stream
        # extra unfused passes DGL/PyTorch perform (log_softmax + nll).
        engine.submit(
            stream, "loss/log_softmax", "loss",
            self.cost.softmax_xent_time(logits.rows, logits.cols),
        )
        engine.submit(
            stream, "loss/nll", "loss",
            self.cost.reduction_time(logits.rows),
        )
        labels = None if self.dataset.is_symbolic else self.dataset.labels
        mask = None if self.dataset.is_symbolic else self.dataset.train_mask
        total_train = self.dataset.num_train
        loss, _ = softmax_cross_entropy(
            engine, self.cost, stream, logits, labels, mask,
            grad_out=grad_out, total_train=total_train, name="loss/grad",
        )
        if self.mode is Mode.SYMBOLIC:
            return None
        return loss / total_train

    def _backward(self, outputs: List[DeviceTensor], grad: DeviceTensor) -> None:
        engine = self.ctx.engine
        stream = self.dev.compute_stream
        L = self.model.num_layers
        self._adam_t += 1
        for l in range(L - 1, -1, -1):
            d_in, d_out = self.model.dims_of(l)
            if l < L - 1:
                relu_backward(engine, self.cost, stream, grad, outputs[l],
                              name=f"bwd{l}/relu")
            # autograd always runs the backward SpMM (no layer-0 skip)
            hwg = self._scratch[0].view2d(self.dataset.n, d_out)
            spmm(engine, self.cost, stream, self.a_hat, grad, hwg,
                 accumulate=False, name=f"bwd{l}/spmm")
            h_in = self.features if l == 0 else outputs[l - 1]
            gemm(engine, self.cost, stream, h_in, hwg, self.wgrads[l],
                 transpose_a=True, name=f"bwd{l}/wgrad")
            if l > 0:
                hgrad = self._scratch[1].view2d(self.dataset.n, d_in)
                gemm(engine, self.cost, stream, hwg, self.weights[l], hgrad,
                     transpose_b=True, name=f"bwd{l}/hgrad")
                grad = hgrad
            self._adam(l)

    def _adam(self, layer: int) -> None:
        stream = self.dev.compute_stream
        w = self.weights[layer]
        if self.mode is Mode.FUNCTIONAL:
            adam_step_op(
                self.ctx.engine, self.cost, stream,
                w.data, self.wgrads[layer].data,
                self.adam_m[layer].data, self.adam_v[layer].data,
                t=self._adam_t, lr=self.lr, beta1=0.9, beta2=0.999, eps=1e-8,
                name=f"adam{layer}",
            )
        else:
            self.ctx.engine.submit(
                stream, f"adam{layer}", "adam", self.cost.adam_time(w.size)
            )

    # -- epochs --------------------------------------------------------------------

    def train_epoch(self) -> EpochStats:
        t0 = self.ctx.synchronize()
        trace_start = len(self.ctx.engine.trace)
        outputs = self._forward()
        grad = self._scratch[1].view2d(self.dataset.n, self.model.layer_dims[-1])
        loss = self._loss(outputs[-1], grad)
        self._backward(outputs, grad)
        t1 = self.ctx.synchronize()
        trace = self.ctx.engine.trace[trace_start:]
        self.epochs_trained += 1
        return EpochStats(
            epoch_time=t1 - t0,
            loss=loss,
            breakdown=OpBreakdown.from_trace(trace),
            peak_memory=self.ctx.peak_memory(),
            trace=list(trace),
        )

    def fit(self, epochs: int) -> List[EpochStats]:
        if epochs < 0:
            raise ConfigurationError(f"epochs must be >= 0, got {epochs}")
        return [self.train_epoch() for _ in range(epochs)]

    def evaluate(self, split: str = "test") -> float:
        if self.mode is not Mode.FUNCTIONAL:
            raise ConfigurationError("evaluate() requires functional mode")
        masks = {
            "train": self.dataset.train_mask,
            "val": self.dataset.val_mask,
            "test": self.dataset.test_mask,
        }
        if split not in masks:
            raise ConfigurationError(f"unknown split {split!r}")
        mask = masks[split]
        logits = self._forward()[-1]
        pred = np.argmax(logits.data[mask], axis=1)
        return float((pred == self.dataset.labels[mask]).mean())
