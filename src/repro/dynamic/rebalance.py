"""Incremental repartitioning under cost drift.

Mutation streams skew the per-rank load of a contiguous 1D partition:
inserts pile nonzeros onto hot rows, deletes hollow out cold ranges.
:class:`Rebalancer` watches the drift of the modelled per-rank cost
(the same per-row cost vector
:func:`~repro.sparse.partition.weighted_cost_partition` consumes —
SpMM nnz traffic plus per-row broadcast bytes) and, when the max/mean
imbalance crosses a threshold, recuts the boundaries. The result
reports exactly which rows changed owner, so consumers move only those
rows: the serving engine rewrites its routing table and drops its warm
plan (plan signatures change -> capture/replay recaptures instead of
stale-replaying), and per-rank memory accounting follows the moved
rows rather than being rebuilt wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.config import FLOAT_SIZE, INDEX_SIZE
from repro.errors import ConfigurationError
from repro.sparse.csr import CSRMatrix
from repro.sparse.partition import PartitionVector, weighted_cost_partition


@dataclass(frozen=True)
class RebalanceResult:
    """Outcome of one drift check."""

    triggered: bool
    imbalance_before: float
    imbalance_after: float
    #: rows whose owner changed (empty when not triggered).
    moved_rows: np.ndarray
    partition: PartitionVector

    @property
    def moves(self) -> int:
        return int(self.moved_rows.size)


class Rebalancer:
    """Watch per-rank cost drift; recut the 1D partition when it spikes."""

    def __init__(
        self,
        parts: int,
        threshold: float = 1.25,
        feature_dim: int = 0,
        machine=None,
        capacities: Optional[Sequence[float]] = None,
    ):
        if parts < 1:
            raise ConfigurationError(f"parts must be >= 1, got {parts}")
        if threshold < 1.0:
            raise ConfigurationError(
                f"threshold is a max/mean ratio, must be >= 1.0, "
                f"got {threshold}"
            )
        self.parts = parts
        self.threshold = threshold
        self.feature_dim = feature_dim
        self._machine = machine
        if capacities is not None:
            caps = np.asarray(capacities, dtype=np.float64)
        elif machine is not None:
            caps = np.array(
                [machine.injection_bandwidth(r) for r in range(parts)],
                dtype=np.float64,
            )
            caps /= caps.mean()
        else:
            caps = np.ones(parts, dtype=np.float64)
        if caps.size != parts:
            raise ConfigurationError(
                f"{caps.size} capacities for {parts} parts"
            )
        self.capacities = caps
        self.rebalances = 0
        self.total_moves = 0

    def row_costs(self, matrix: CSRMatrix) -> np.ndarray:
        """Per-row modelled cost: nnz memory traffic + broadcast bytes.

        The same shape of cost :func:`resource_aware_partition` prices;
        without a machine the byte terms use unit bandwidths, which
        preserves the *relative* weighting the cut cares about.
        """
        row_nnz = matrix.row_nnz().astype(np.float64)
        if self._machine is not None:
            t_nnz = (
                INDEX_SIZE + 2 * FLOAT_SIZE
            ) / self._machine.gpu.memory_bandwidth
        else:
            t_nnz = float(INDEX_SIZE + 2 * FLOAT_SIZE)
        return row_nnz * t_nnz + self.feature_dim * FLOAT_SIZE * 1e-3

    def imbalance(
        self, matrix: CSRMatrix, part: PartitionVector
    ) -> float:
        """Capacity-normalised max/mean per-part cost ratio."""
        costs = self.row_costs(matrix)
        bounds = np.asarray(part.boundaries, dtype=np.int64)
        per_part = np.add.reduceat(
            np.concatenate([costs, [0.0]]), bounds[:-1]
        )
        # reduceat quirk: an empty part at index i reduces from
        # boundary i onward; zero it explicitly.
        sizes = np.diff(bounds)
        per_part = np.where(sizes > 0, per_part, 0.0)
        loaded = per_part / self.capacities
        mean = loaded.mean()
        return float(loaded.max() / mean) if mean > 0 else 1.0

    def check(
        self, matrix: CSRMatrix, part: PartitionVector
    ) -> RebalanceResult:
        """One drift check; recuts via ``weighted_cost_partition``.

        ``part`` may cover fewer rows than ``matrix`` (vertices were
        added since the last cut) — growth alone forces a recut since
        the old vector no longer covers the row space.
        """
        n = matrix.shape[0]
        grown = part.total != n
        before = self.imbalance(matrix, part) if not grown else float("inf")
        if not grown and before <= self.threshold:
            return RebalanceResult(
                triggered=False,
                imbalance_before=before,
                imbalance_after=before,
                moved_rows=np.empty(0, dtype=np.int64),
                partition=part,
            )
        new_part = weighted_cost_partition(
            self.row_costs(matrix), self.capacities
        )
        rows = np.arange(n, dtype=np.int64)
        old_owner = np.full(n, -1, dtype=np.int64)
        covered = min(part.total, n)
        if covered:
            old_owner[:covered] = part.owners(rows[:covered])
        moved = rows[old_owner != new_part.owners(rows)]
        after = self.imbalance(matrix, new_part)
        self.rebalances += 1
        self.total_moves += int(moved.size)
        return RebalanceResult(
            triggered=True,
            imbalance_before=before,
            imbalance_after=after,
            moved_rows=moved,
            partition=new_part,
        )
