"""Mixed read/write serving: queries, mutations, and retrains interleaved.

:class:`DynamicServingEngine` wraps a
:class:`~repro.serve.server.ServingEngine` and drives it *through*
generation boundaries instead of against a frozen snapshot. At each
boundary it:

1. commits the :class:`~repro.dynamic.graph.DynamicGraph` delta buffer
   (touched-row CSR splice + restricted renormalisation);
2. swaps the new matrices into the live engine in place — adjacency,
   row-nnz table, degree table, dataset snapshot — and drops the warm
   plan, so the next warm *recaptures* against the new shapes instead
   of stale-replaying;
3. delta-invalidates the serving LRU: exactly the L-hop-affected
   ``(layer, vertex)`` entries (:func:`~repro.dynamic.invalidate.l_hop_affected`)
   are evicted, everything else keeps serving — the eviction count vs
   the flush-equivalent is reported per generation;
4. optionally recuts the routing partition through a
   :class:`~repro.dynamic.rebalance.Rebalancer` (moving only rows whose
   owner changed) and warm-start-retrains through an
   :class:`~repro.dynamic.incremental.IncrementalTrainer`, publishing
   new weights with a model-version bump.

Every boundary emits a ``dynamic.gen-*`` telemetry span plus
``repro_dynamic_*`` counters, so one hub sees reads, writes, and
retrains on a single timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dynamic.graph import CommitResult, DynamicGraph
from repro.dynamic.incremental import IncrementalTrainer
from repro.dynamic.invalidate import l_hop_affected
from repro.dynamic.mutation import MutationBatch, MutationStream
from repro.dynamic.rebalance import Rebalancer
from repro.errors import ConfigurationError
from repro.serve.server import ServingConfig, ServingEngine
from repro.serve.workload import InferenceRequest
from repro.sparse.partition import uniform_partition


@dataclass(frozen=True)
class GenerationStats:
    """Telemetry of one generation boundary."""

    generation: int
    arrival: float
    mutations_applied: int
    rows_rebuilt: int
    cache_entries_delta_evicted: int
    cache_flush_equivalent: int
    tile_entries_delta_evicted: int
    tile_flush_equivalent: int
    rebalance_triggered: bool
    rebalance_moves: int
    retrain_epochs: int
    num_vertices: int
    num_edges: int

    @property
    def eviction_fraction(self) -> float:
        """Delta evictions as a share of what a full flush would drop."""
        if self.cache_flush_equivalent == 0:
            return 0.0
        return (
            self.cache_entries_delta_evicted / self.cache_flush_equivalent
        )


@dataclass(frozen=True)
class DynamicServingResult:
    """One mixed read/write run end to end."""

    logits: Dict[int, np.ndarray]
    summary: Dict[str, float]
    generations: Tuple[GenerationStats, ...]

    @property
    def total_delta_evicted(self) -> int:
        return sum(g.cache_entries_delta_evicted for g in self.generations)

    @property
    def total_flush_equivalent(self) -> int:
        return sum(g.cache_flush_equivalent for g in self.generations)


class DynamicServingEngine:
    """A serving engine that keeps answering while the graph changes."""

    def __init__(
        self,
        graph: DynamicGraph,
        weights: Sequence[np.ndarray],
        spec,
        config: Optional[ServingConfig] = None,
        telemetry=None,
        rebalancer: Optional[Rebalancer] = None,
        incremental: Optional[IncrementalTrainer] = None,
        slo=None,
    ):
        self.graph = graph
        self.engine = ServingEngine(
            graph.snapshot_dataset(), weights, spec,
            config=config, telemetry=telemetry, slo=slo,
        )
        self.telemetry = telemetry
        self.rebalancer = rebalancer
        self.incremental = incremental
        #: training-side caches to delta-invalidate at each boundary:
        #: ``(TrainingTileCache, PartitionVector, perm or None)``.
        self._tile_caches: List[Tuple[object, object, Optional[np.ndarray]]] = []
        self.generations: List[GenerationStats] = []

    # -- wiring ---------------------------------------------------------------

    def attach_tile_cache(self, cache, part, perm=None) -> None:
        """Delta-invalidate a training tile cache at every boundary.

        ``part`` is the owning trainer's partition vector over *permuted*
        rows; ``perm`` (if the trainer permuted, §5.2) maps permuted
        position -> original vertex id, and is inverted here to route
        touched original ids to their permuted rows.
        """
        inv = None
        if perm is not None:
            perm = np.asarray(perm, dtype=np.int64)
            inv = np.empty(perm.size, dtype=np.int64)
            inv[perm] = np.arange(perm.size, dtype=np.int64)
        self._tile_caches.append((cache, part, inv))

    # -- the write path -------------------------------------------------------

    def apply(self, batch: MutationBatch) -> int:
        return self.graph.apply(batch)

    def _delta_invalidate(self, result: CommitResult) -> Tuple[int, int]:
        cache = self.engine.cache
        flush_equivalent = len(cache)
        if flush_equivalent == 0:
            return 0, 0
        stale = l_hop_affected(
            self.graph.a_hat_t,
            result.touched_rows,
            self.engine.spec.num_layers,
        )
        evicted = 0
        for layer, ids in enumerate(stale, start=1):
            evicted += cache.invalidate_at(layer, ids)
        return evicted, flush_equivalent

    def _invalidate_tiles(self, result: CommitResult) -> Tuple[int, int]:
        evicted = total = 0
        for cache, part, inv in self._tile_caches:
            rows = result.touched_rows
            if inv is not None:
                in_range = rows[rows < inv.size]
                rows = inv[in_range]
            e, t = cache.invalidate_rows(part, rows)
            evicted += e
            total += t
        return evicted, total

    def _rebalance(self) -> Tuple[bool, int]:
        """Recut routing after a commit; returns (triggered, moves)."""
        engine = self.engine
        n = self.graph.n
        if self.rebalancer is not None:
            res = self.rebalancer.check(self.graph.a_hat_t, engine.partition)
            if not res.triggered:
                return False, 0
            engine.partition = res.partition
            moves = res.moves
        elif engine.partition.total != n:
            # no rebalancer but the vertex set grew: recut uniformly so
            # routing covers the new rows.
            old = engine._owner_of
            engine.partition = uniform_partition(n, engine.config.num_gpus)
            owners = engine.partition.owners(np.arange(n, dtype=np.int64))
            moves = int((owners[: old.size] != old).sum()) + (n - old.size)
        else:
            return False, 0
        owners = engine.partition.owners(np.arange(n, dtype=np.int64))
        # keep degraded-mode routing: rows cut to a dead rank reroute
        # round-robin over the survivors, as ServingEngine._degrade does.
        alive = np.asarray(engine.alive_ranks, dtype=np.int64)
        dead_mask = ~np.isin(owners, alive)
        lost = np.nonzero(dead_mask)[0]
        if lost.size:
            owners[lost] = alive[np.arange(lost.size) % alive.size]
        engine._owner_of = owners
        return True, int(moves)

    def commit(self, arrival: float = 0.0) -> GenerationStats:
        """Merge pending mutations and carry the engine across the boundary."""
        engine = self.engine
        sim = engine.ctx.engine
        t0 = sim.now(engine._alive_streams())
        span = None
        if self.telemetry is not None:
            span = self.telemetry.tracer.begin(
                f"dynamic.gen-{self.graph.generation + 1}",
                t0,
                correlation=f"gen-{self.graph.generation + 1}",
                category="dynamic",
            )
        try:
            result = self.graph.commit()
            evicted, flush_equivalent = self._delta_invalidate(result)
            tile_evicted, tile_total = self._invalidate_tiles(result)
            # swap the new generation into the live engine.
            snapshot = self.graph.snapshot_dataset()
            engine.dataset = snapshot
            engine.a_hat_t = self.graph.a_hat_t
            engine.a_hat = self.graph.a_hat_t.transpose()
            engine._row_nnz = engine.a_hat_t.row_nnz().astype(np.int64)
            engine.degrees = self.graph.degrees()
            # captured warm schedules bake in the old shapes/nnz — force
            # a recapture rather than a stale replay.
            engine._warm_plan = None
            rebalanced, moves = self._rebalance()
            retrain_epochs = self._maybe_retrain()
        finally:
            if span is not None:
                self.telemetry.tracer.end(
                    span, sim.now(engine._alive_streams())
                )
        stats = GenerationStats(
            generation=result.generation,
            arrival=arrival,
            mutations_applied=result.mutations_applied,
            rows_rebuilt=result.normalized_rows_rebuilt,
            cache_entries_delta_evicted=evicted,
            cache_flush_equivalent=flush_equivalent,
            tile_entries_delta_evicted=tile_evicted,
            tile_flush_equivalent=tile_total,
            rebalance_triggered=rebalanced,
            rebalance_moves=moves,
            retrain_epochs=retrain_epochs,
            num_vertices=self.graph.n,
            num_edges=self.graph.m,
        )
        self.generations.append(stats)
        if self.telemetry is not None:
            t = self.telemetry
            flight_note = getattr(t, "flight_note", None)
            if flight_note is not None:
                flight_note(
                    "cache_gen",
                    time=arrival,
                    generation=result.generation,
                    mutations=result.mutations_applied,
                    delta_evicted=evicted,
                    flush_equivalent=flush_equivalent,
                )
            t.inc("repro_dynamic_generations_total")
            t.inc(
                "repro_dynamic_mutations_applied_total",
                result.mutations_applied,
            )
            t.inc(
                "repro_dynamic_rows_rebuilt_total",
                result.normalized_rows_rebuilt,
            )
            t.inc("repro_dynamic_cache_entries_delta_evicted_total", evicted)
            t.inc(
                "repro_dynamic_cache_flush_equivalent_total",
                flush_equivalent,
            )
            t.inc(
                "repro_dynamic_tile_entries_delta_evicted_total",
                tile_evicted,
            )
            if rebalanced:
                t.inc("repro_dynamic_rebalances_total")
                t.inc("repro_dynamic_rebalance_moves_total", moves)
            t.set_gauge("repro_dynamic_vertices", self.graph.n)
            t.set_gauge("repro_dynamic_edges", self.graph.m)
        return stats

    def _maybe_retrain(self) -> int:
        """Warm-start retrain on the new generation; publish new weights."""
        inc = self.incremental
        if inc is None or inc.retrain_epochs_per_generation <= 0:
            return 0
        inc.refresh()
        epochs = inc.retrain_epochs_per_generation
        for _ in range(epochs):
            inc.trainer.train_epoch()
        self.engine.update_weights(inc.trainer.get_weights())
        if self.telemetry is not None:
            self.telemetry.inc("repro_dynamic_retrains_total")
            self.telemetry.inc("repro_dynamic_retrain_epochs_total", epochs)
        return epochs

    # -- the mixed loop -------------------------------------------------------

    def run(
        self,
        requests: Sequence[InferenceRequest],
        mutations: MutationStream,
    ) -> DynamicServingResult:
        """Serve a query stream with mutation batches interleaved by arrival.

        Queries arriving before a batch's arrival are served against the
        batch's pre-commit generation; the batch then commits (one batch
        per generation) and later queries see the new graph. Ties go to
        the queries (reads observe the generation they raced).
        """
        if not requests:
            raise ConfigurationError("run: empty request stream")
        reqs = sorted(requests, key=lambda r: r.arrival)
        logits: Dict[int, np.ndarray] = {}
        i = 0
        for batch in mutations:
            j = i
            while j < len(reqs) and reqs[j].arrival <= batch.arrival:
                j += 1
            if j > i:
                logits.update(self.engine.serve(reqs[i:j]).logits)
                i = j
            self.apply(batch)
            self.commit(arrival=batch.arrival)
        if i < len(reqs):
            logits.update(self.engine.serve(reqs[i:]).logits)
        summary = self.engine.metrics.summary(
            cache_stats=self.engine.cache.stats
        )
        return DynamicServingResult(
            logits=logits,
            summary=summary,
            generations=tuple(self.generations),
        )
