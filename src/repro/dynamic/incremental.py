"""Warm-start retraining on a mutated graph.

When the graph changes, the model serving it is stale — but rarely *very*
stale: a few thousand edge flips barely move the loss surface, so
restarting Adam from random init throws away almost-converged weights.
:class:`IncrementalTrainer` reuses the elastic-recovery machinery
(:mod:`repro.resilience.recovery`'s checkpoint-restore -> repartition ->
continue protocol) across *generation* boundaries instead of *failure*
boundaries: checkpoint the live trainer (weights + Adam moments), build
a fresh :class:`~repro.core.trainer.MGGCNTrainer` on the mutated
snapshot (which re-permutes and re-partitions it), restore the
checkpoint into it, and keep training.

:meth:`IncrementalTrainer.compare_to_scratch` quantifies the payoff:
train a from-scratch trainer for ``scratch_epochs``, take its final
validation loss as the target, and count how many epochs the
warm-started trainer needs to match it — the benchmark gates that the
warm count is *strictly* smaller.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.core.trainer import MGGCNTrainer, TrainerConfig
from repro.dynamic.graph import DynamicGraph
from repro.errors import ConfigurationError
from repro.nn.checkpoint import load_checkpoint, save_checkpoint
from repro.nn.model import GCNModelSpec
from repro.sparse.csr import CSRMatrix


def full_batch_loss(
    a_hat_t: CSRMatrix,
    features: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray,
    weights: Sequence[np.ndarray],
) -> float:
    """Masked softmax cross-entropy of a full-batch forward.

    Partitioning-independent (plain NumPy over the whole graph, the
    :class:`~repro.nn.reference.ReferenceGCN` arithmetic), so warm and
    scratch trainers are compared on identical ground regardless of how
    each sharded the graph. Averaged over the masked vertex count.
    """
    rows = np.nonzero(mask)[0]
    if rows.size == 0:
        raise ConfigurationError("full_batch_loss: empty evaluation mask")
    h = features
    L = len(weights)
    for l, w in enumerate(weights):
        hw = h @ w
        ahw = a_hat_t.spmm(hw)
        if l < L - 1:
            np.maximum(ahw, 0.0, out=ahw)
        h = ahw.astype(FLOAT_DTYPE, copy=False)
    sub = h[rows]
    shifted = sub - sub.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    picked = log_probs[np.arange(rows.size), labels[rows]]
    return float(-picked.sum() / rows.size)


@dataclass(frozen=True)
class RetrainReport:
    """Warm-start vs from-scratch convergence on one mutated generation."""

    target_loss: float
    warm_epochs: int
    scratch_epochs: int
    warm_losses: Tuple[float, ...]
    scratch_losses: Tuple[float, ...]
    warm_reached_target: bool

    @property
    def epochs_saved(self) -> int:
        return self.scratch_epochs - self.warm_epochs


class IncrementalTrainer:
    """A trainer that follows a :class:`DynamicGraph` across generations."""

    def __init__(
        self,
        graph: DynamicGraph,
        model: GCNModelSpec,
        machine=None,
        num_gpus: Optional[int] = None,
        config: Optional[TrainerConfig] = None,
        checkpoint_dir=None,
        retrain_epochs_per_generation: int = 1,
    ):
        self.graph = graph
        self.model = model
        self._machine = machine
        self._num_gpus = num_gpus
        self.config = config or TrainerConfig()
        #: epochs a DynamicServingEngine trains after each refresh();
        #: 0 disables retraining in the mixed loop.
        self.retrain_epochs_per_generation = retrain_epochs_per_generation
        if checkpoint_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(
                prefix="repro-dynamic-"
            )
            self._ckpt_dir = Path(self._tmpdir.name)
        else:
            self._tmpdir = None
            self._ckpt_dir = Path(checkpoint_dir)
            self._ckpt_dir.mkdir(parents=True, exist_ok=True)
        self.trainer = self._build_trainer()
        #: the graph generation the live trainer was built against.
        self.generation = graph.generation
        self.refreshes = 0

    def _build_trainer(self) -> MGGCNTrainer:
        return MGGCNTrainer(
            self.graph.snapshot_dataset(),
            self.model,
            machine=self._machine,
            num_gpus=self._num_gpus,
            config=self.config,
        )

    @property
    def stale(self) -> bool:
        """The graph committed past the trainer's generation."""
        return self.graph.generation != self.generation

    def refresh(self) -> MGGCNTrainer:
        """Re-anchor on the current generation, warm-starting the model.

        The ElasticTrainer protocol pointed at a generation boundary:
        checkpoint the live trainer (weights, Adam moments, epoch
        counter), rebuild on the mutated snapshot — which re-partitions
        it, giving every rank fresh tiles and a fresh plan signature —
        and restore the checkpoint into the replacement. No-op when the
        trainer is already current.
        """
        if not self.stale:
            return self.trainer
        path = self._ckpt_dir / f"gen{self.generation}.npz"
        save_checkpoint(self.trainer, path)
        replacement = self._build_trainer()
        load_checkpoint(replacement, path)
        self.trainer = replacement
        self.generation = self.graph.generation
        self.refreshes += 1
        return self.trainer

    def validation_loss(self, split: str = "val") -> float:
        """Full-batch masked loss of the live weights on the live graph."""
        mask = {
            "train": self.graph.train_mask,
            "val": self.graph.val_mask,
            "test": self.graph.test_mask,
        }[split]
        return full_batch_loss(
            self.graph.a_hat_t,
            self.graph.features,
            self.graph.labels,
            mask,
            self.trainer.get_weights(),
        )

    def train_until(
        self,
        target_loss: float,
        max_epochs: int,
        split: str = "val",
    ) -> Tuple[int, List[float]]:
        """Epochs until the masked loss reaches ``target_loss``.

        Evaluates before the first epoch (a warm start may already be
        there: 0 epochs). Returns ``(epochs, losses)`` with
        ``epochs == max_epochs`` (and a final losses entry above the
        target) when the target was not reached.
        """
        losses = [self.validation_loss(split)]
        if losses[0] <= target_loss:
            return 0, losses
        for epoch in range(1, max_epochs + 1):
            self.trainer.train_epoch()
            losses.append(self.validation_loss(split))
            if losses[-1] <= target_loss:
                return epoch, losses
        return max_epochs, losses

    def compare_to_scratch(
        self,
        scratch_epochs: int,
        max_epochs: Optional[int] = None,
        split: str = "val",
        scratch_seed_offset: int = 1,
    ) -> RetrainReport:
        """Warm-start vs scratch on the current generation.

        The scratch baseline trains a fresh random-init trainer for
        ``scratch_epochs`` on the same snapshot; its best loss is the
        target. ``scratch_seed_offset`` decorrelates the scratch init
        from the warm trainer's original one.
        """
        if self.stale:
            self.refresh()
        cfg = self.config
        scratch_cfg = TrainerConfig(
            **{
                **{
                    f: getattr(cfg, f)
                    for f in cfg.__dataclass_fields__
                },
                "seed": cfg.seed + scratch_seed_offset,
            }
        )
        scratch = MGGCNTrainer(
            self.graph.snapshot_dataset(),
            self.model,
            machine=self._machine,
            num_gpus=self._num_gpus,
            config=scratch_cfg,
        )
        scratch_losses: List[float] = []
        for _ in range(scratch_epochs):
            scratch.train_epoch()
            scratch_losses.append(
                full_batch_loss(
                    self.graph.a_hat_t,
                    self.graph.features,
                    self.graph.labels,
                    {
                        "train": self.graph.train_mask,
                        "val": self.graph.val_mask,
                        "test": self.graph.test_mask,
                    }[split],
                    scratch.get_weights(),
                )
            )
        target = min(scratch_losses)
        warm_epochs, warm_losses = self.train_until(
            target, max_epochs if max_epochs is not None else scratch_epochs,
            split=split,
        )
        return RetrainReport(
            target_loss=target,
            warm_epochs=warm_epochs,
            scratch_epochs=scratch_epochs,
            warm_losses=tuple(warm_losses),
            scratch_losses=tuple(scratch_losses),
            warm_reached_target=warm_losses[-1] <= target,
        )
