"""Dynamic graphs: mutation streams, incremental CSR, and live serving.

The static pipeline froze the graph at load time; this package makes it
a moving target. A seeded :class:`MutationStream` (Poisson or bursty
arrivals, Zipf-skewed endpoints — the write-side mirror of
:mod:`repro.serve.workload`) feeds a :class:`DynamicGraph`, which
buffers deltas and merges them into the CSR pair at *generation*
boundaries, renormalising only the touched rows yet staying
bit-identical to a from-scratch rebuild. Around each boundary:

* :func:`l_hop_affected` computes the exact per-layer stale vertex
  sets so caches evict deltas instead of flushing;
* :class:`Rebalancer` recuts the 1D partition when modelled per-rank
  cost drifts past a threshold, reporting exactly which rows moved;
* :class:`IncrementalTrainer` warm-starts retraining from the live
  checkpoint on the mutated snapshot and quantifies epochs saved vs
  scratch;
* :class:`DynamicServingEngine` drives a live
  :class:`~repro.serve.server.ServingEngine` through the boundary —
  mixed query/mutation/retrain traffic on one telemetry timeline.
"""

from repro.dynamic.engine import (
    DynamicServingEngine,
    DynamicServingResult,
    GenerationStats,
)
from repro.dynamic.graph import CommitResult, DynamicGraph
from repro.dynamic.incremental import (
    IncrementalTrainer,
    RetrainReport,
    full_batch_loss,
)
from repro.dynamic.invalidate import l_hop_affected
from repro.dynamic.mutation import (
    MutationBatch,
    MutationStream,
    bursty_mutations,
    poisson_mutations,
)
from repro.dynamic.rebalance import RebalanceResult, Rebalancer

__all__ = [
    "CommitResult",
    "DynamicGraph",
    "DynamicServingEngine",
    "DynamicServingResult",
    "GenerationStats",
    "IncrementalTrainer",
    "MutationBatch",
    "MutationStream",
    "RebalanceResult",
    "Rebalancer",
    "RetrainReport",
    "bursty_mutations",
    "full_batch_loss",
    "l_hop_affected",
    "poisson_mutations",
]
