"""Delta cache invalidation: evict exactly the L-hop-affected entries.

A mutation batch renormalises rows ``R`` of ``A_hat^T`` (the
:attr:`~repro.dynamic.graph.CommitResult.touched_rows`). The layer-``l``
embedding of vertex ``v`` computed by the serving forward is a function
of row ``v`` of ``A_hat^T`` and the layer-``l-1`` embeddings of its
in-neighbours (that row's columns), so staleness propagates exactly one
hop per layer:

* ``stale_1 = R`` (features are unchanged for surviving vertices);
* ``stale_l = R ∪ { v : columns(A_hat^T[v]) ∩ stale_{l-1} ≠ ∅ }``.

Evicting ``(l, v)`` for ``v ∈ stale_l`` therefore leaves every surviving
cache entry bitwise valid on the new graph — the transparency property
the integration tests pin against a cold engine.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.sparse.csr import CSRMatrix


def l_hop_affected(
    a_hat_t: CSRMatrix, touched_rows: np.ndarray, num_layers: int
) -> List[np.ndarray]:
    """Per-layer stale vertex sets ``[stale_1, ..., stale_L]``.

    ``touched_rows`` are the renormalised rows of ``a_hat_t`` (sorted
    unique); layer 1 is the first hidden layer. Computed with one
    boolean frontier sweep over the CSR pattern per extra layer.
    """
    n = a_hat_t.shape[0]
    touched = np.asarray(touched_rows, dtype=np.int64)
    out: List[np.ndarray] = []
    stale = np.zeros(n, dtype=bool)
    stale[touched] = True
    out.append(np.nonzero(stale)[0])
    if num_layers <= 1:
        return out
    row_ids = np.repeat(
        np.arange(n, dtype=np.int64), a_hat_t.row_nnz()
    )
    for _ in range(1, num_layers):
        hit = stale[a_hat_t.indices]
        nxt = np.zeros(n, dtype=bool)
        nxt[touched] = True
        nxt[row_ids[hit]] = True
        stale = nxt
        out.append(np.nonzero(stale)[0])
    return out
