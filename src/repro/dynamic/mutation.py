"""Seeded graph-mutation streams (arrival processes + targets).

The write-side twin of :mod:`repro.serve.workload`: the same seed must
produce the same mutation stream so incremental-rebuild parity and
delta-invalidation measurements are exactly reproducible. Two arrival
processes mirror the read side:

* :func:`poisson_mutations` — memoryless batch arrivals at a target
  rate, the steady-churn baseline (follower graphs, rating streams);
* :func:`bursty_mutations` — Poisson-arriving *flurries* of batches,
  the breaking-news / flash-crowd write pattern.

Edge targets are drawn with
:func:`repro.datasets.loader.sample_query_vertices`: uniform, or
Zipf-skewed toward high-degree vertices — churn concentrates on hubs in
real graphs, which is exactly the regime where delta cache invalidation
must beat a full flush to be worth having.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE, OFFSET_DTYPE
from repro.datasets.loader import Dataset, sample_query_vertices
from repro.errors import MutationError
from repro.utils.rng import SeedLike, as_generator, split_generator


def _empty_edges() -> np.ndarray:
    return np.empty((0, 2), dtype=OFFSET_DTYPE)


def _empty_ids() -> np.ndarray:
    return np.empty(0, dtype=OFFSET_DTYPE)


@dataclass(frozen=True)
class MutationBatch:
    """One atomic group of graph writes, applied at a generation boundary.

    Edge arrays are ``(k, 2)`` ``[u, v]`` pairs (directed entries — an
    undirected stream carries both orientations explicitly). Within one
    commit window the *last* operation on an edge key wins; removing a
    vertex wins over every edge op on it in the same window.
    """

    batch_id: int
    #: simulated arrival time, seconds.
    arrival: float
    insert_edges: np.ndarray = field(default_factory=_empty_edges)
    #: weights of the inserted edges (defaults to 1.0 each).
    insert_vals: Optional[np.ndarray] = None
    delete_edges: np.ndarray = field(default_factory=_empty_edges)
    #: vertices appended to the graph (features required, one row each).
    add_features: Optional[np.ndarray] = None
    add_labels: Optional[np.ndarray] = None
    remove_vertices: np.ndarray = field(default_factory=_empty_ids)

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise MutationError(
                f"batch {self.batch_id}: negative arrival {self.arrival}"
            )
        for name in ("insert_edges", "delete_edges"):
            arr = np.asarray(getattr(self, name), dtype=OFFSET_DTYPE)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise MutationError(
                    f"batch {self.batch_id}: {name} must be (k, 2), "
                    f"got {arr.shape}"
                )
            object.__setattr__(self, name, arr)
        vals = self.insert_vals
        if vals is None:
            vals = np.ones(self.insert_edges.shape[0], dtype=FLOAT_DTYPE)
        else:
            vals = np.asarray(vals, dtype=FLOAT_DTYPE).ravel()
        if vals.shape[0] != self.insert_edges.shape[0]:
            raise MutationError(
                f"batch {self.batch_id}: {vals.shape[0]} insert values for "
                f"{self.insert_edges.shape[0]} inserted edges"
            )
        object.__setattr__(self, "insert_vals", vals)
        object.__setattr__(
            self,
            "remove_vertices",
            np.asarray(self.remove_vertices, dtype=OFFSET_DTYPE).ravel(),
        )
        feats = self.add_features
        if feats is not None:
            feats = np.asarray(feats, dtype=FLOAT_DTYPE)
            if feats.ndim != 2:
                raise MutationError(
                    f"batch {self.batch_id}: add_features must be 2-D"
                )
            object.__setattr__(self, "add_features", feats)
        labels = self.add_labels
        if labels is not None:
            labels = np.asarray(labels, dtype=np.int64).ravel()
            if feats is None or labels.shape[0] != feats.shape[0]:
                raise MutationError(
                    f"batch {self.batch_id}: add_labels must pair with "
                    f"add_features rows"
                )
            object.__setattr__(self, "add_labels", labels)

    @property
    def num_added_vertices(self) -> int:
        return 0 if self.add_features is None else self.add_features.shape[0]

    @property
    def num_ops(self) -> int:
        return (
            self.insert_edges.shape[0]
            + self.delete_edges.shape[0]
            + self.num_added_vertices
            + self.remove_vertices.shape[0]
        )


@dataclass(frozen=True)
class MutationStream:
    """An ordered, seeded sequence of mutation batches."""

    batches: Tuple[MutationBatch, ...]

    def __post_init__(self) -> None:
        arrivals = [b.arrival for b in self.batches]
        if any(a > b for a, b in zip(arrivals, arrivals[1:])):
            raise MutationError("mutation batches must be arrival-sorted")

    def __len__(self) -> int:
        return len(self.batches)

    def __iter__(self) -> Iterator[MutationBatch]:
        return iter(self.batches)

    @property
    def edges_inserted(self) -> int:
        return sum(b.insert_edges.shape[0] for b in self.batches)

    @property
    def edges_deleted(self) -> int:
        return sum(b.delete_edges.shape[0] for b in self.batches)


def _sample_edges(
    dataset: Dataset,
    count: int,
    skew: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """``(count, 2)`` distinct-endpoint edges, one Zipf-hot endpoint."""
    n = dataset.n
    if n < 2:
        raise MutationError(f"{dataset.name}: need >= 2 vertices for edges")
    hot = sample_query_vertices(dataset, count, skew=skew, seed=rng)
    other = rng.integers(0, n, size=count, dtype=np.int64)
    # reject self-loops: shift the uniform endpoint off the hot one.
    clash = other == hot
    other[clash] = (other[clash] + 1) % n
    return np.stack([hot, other], axis=1).astype(OFFSET_DTYPE)


def _sample_existing_edges(
    dataset: Dataset,
    count: int,
    skew: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Edges drawn from the dataset's *initial* edge set (for deletes).

    A later batch may have deleted the same edge already — the dynamic
    graph counts those as no-op deletes, which is the semantics a real
    write stream has anyway (deletes race).
    """
    adj = dataset.adjacency
    if adj.rows.size == 0:
        return _empty_edges()
    if skew > 0.0:
        # weight stored entries by the degree rank of their source, so
        # hub edges churn hardest (same regime as the query stream).
        degree = np.bincount(adj.rows, minlength=dataset.n) + np.bincount(
            adj.cols, minlength=dataset.n
        )
        w = (degree[adj.rows] + 1.0) ** skew
        p = w / w.sum()
        picks = rng.choice(adj.rows.size, size=count, p=p)
    else:
        picks = rng.integers(0, adj.rows.size, size=count, dtype=np.int64)
    return np.stack([adj.rows[picks], adj.cols[picks]], axis=1).astype(
        OFFSET_DTYPE
    )


def _symmetrize(edges: np.ndarray) -> np.ndarray:
    if edges.shape[0] == 0:
        return edges
    return np.concatenate([edges, edges[:, ::-1]], axis=0)


def _build_batches(
    dataset: Dataset,
    arrivals: np.ndarray,
    edges_per_batch: int,
    insert_fraction: float,
    skew: float,
    symmetric: bool,
    rng: np.random.Generator,
) -> MutationStream:
    batches: List[MutationBatch] = []
    for i, arrival in enumerate(np.sort(arrivals, kind="stable")):
        num_ins = int(round(edges_per_batch * insert_fraction))
        num_del = edges_per_batch - num_ins
        ins = _sample_edges(dataset, num_ins, skew, rng)
        dels = _sample_existing_edges(dataset, num_del, skew, rng)
        if symmetric:
            ins, dels = _symmetrize(ins), _symmetrize(dels)
        batches.append(
            MutationBatch(
                batch_id=i,
                arrival=float(arrival),
                insert_edges=ins,
                delete_edges=dels,
            )
        )
    return MutationStream(tuple(batches))


def _check_common(edges_per_batch: int, insert_fraction: float) -> None:
    if edges_per_batch < 1:
        raise MutationError(
            f"edges_per_batch must be >= 1, got {edges_per_batch}"
        )
    if not 0.0 <= insert_fraction <= 1.0:
        raise MutationError(
            f"insert_fraction must be in [0, 1], got {insert_fraction}"
        )


def poisson_mutations(
    dataset: Dataset,
    num_batches: int,
    rate: float,
    edges_per_batch: int = 8,
    insert_fraction: float = 0.7,
    skew: float = 0.0,
    symmetric: bool = True,
    start: float = 0.0,
    seed: SeedLike = None,
) -> MutationStream:
    """``num_batches`` mutation batches with exponential arrival gaps.

    ``rate`` is batches per simulated second. ``symmetric=True`` emits
    both orientations of every edge op (benchmark graphs are
    undirected).
    """
    if num_batches < 0:
        raise MutationError(f"num_batches must be >= 0, got {num_batches}")
    if rate <= 0:
        raise MutationError(f"arrival rate must be positive, got {rate}")
    if start < 0:
        raise MutationError(f"start must be >= 0, got {start}")
    _check_common(edges_per_batch, insert_fraction)
    rng = as_generator(seed)
    arrival_rng, target_rng = split_generator(rng, 2)
    gaps = arrival_rng.exponential(1.0 / rate, size=num_batches)
    arrivals = start + np.cumsum(gaps)
    return _build_batches(
        dataset, arrivals, edges_per_batch, insert_fraction, skew,
        symmetric, target_rng,
    )


def bursty_mutations(
    dataset: Dataset,
    num_bursts: int,
    burst_size: int,
    burst_rate: float,
    intra_burst_gap: float = 1e-4,
    edges_per_batch: int = 8,
    insert_fraction: float = 0.7,
    skew: float = 0.0,
    symmetric: bool = True,
    start: float = 0.0,
    seed: SeedLike = None,
) -> MutationStream:
    """Poisson-arriving bursts of ``burst_size`` back-to-back batches."""
    if num_bursts < 0:
        raise MutationError(f"num_bursts must be >= 0, got {num_bursts}")
    if burst_size < 1:
        raise MutationError(f"burst_size must be >= 1, got {burst_size}")
    if burst_rate <= 0:
        raise MutationError(
            f"burst rate must be positive, got {burst_rate}"
        )
    if intra_burst_gap < 0:
        raise MutationError(
            f"intra_burst_gap must be >= 0, got {intra_burst_gap}"
        )
    if start < 0:
        raise MutationError(f"start must be >= 0, got {start}")
    _check_common(edges_per_batch, insert_fraction)
    rng = as_generator(seed)
    arrival_rng, target_rng = split_generator(rng, 2)
    burst_gaps = arrival_rng.exponential(1.0 / burst_rate, size=num_bursts)
    burst_starts = start + np.cumsum(burst_gaps)
    offsets = np.arange(burst_size) * intra_burst_gap
    arrivals = (burst_starts[:, None] + offsets[None, :]).reshape(-1)
    return _build_batches(
        dataset, arrivals, edges_per_batch, insert_fraction, skew,
        symmetric, target_rng,
    )
