"""An incrementally maintained graph: delta buffer + CSR row splicing.

:class:`DynamicGraph` is the mutable twin of a frozen
:class:`~repro.datasets.loader.Dataset`. Writes arrive as
:class:`~repro.dynamic.mutation.MutationBatch` deltas, buffer in a COO
delta log, and merge into the live :class:`~repro.sparse.csr.CSRMatrix`
at *generation boundaries* (:meth:`DynamicGraph.commit`):

* only the touched rows of ``A`` / ``A^T`` are re-merged — untouched row
  segments are block-copied into the new index arrays;
* GCN renormalisation (:mod:`repro.sparse.normalize`) is restricted to
  the touched *columns*: an edge op on ``(u, v)`` changes the in-degree
  of ``v``, hence exactly row ``v`` of ``A_hat^T``. Those rows are
  recomputed with the same sequential ``np.add.at`` accumulation order
  (source-ascending) and the same ``float32`` reciprocal/multiply the
  from-scratch path uses, so the incremental matrices are **bit
  identical** to a full rebuild at every generation — the invariant the
  parity tests pin with :meth:`CSRMatrix.equals`.

Commit-window semantics: the last operation on an edge key wins;
deleting a missing edge is a counted no-op; removing a vertex drops all
its incident edges (and wins over same-window edge ops on it) but keeps
its id as a tombstoned empty row, so vertex ids are stable forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE, INDEX_DTYPE, OFFSET_DTYPE
from repro.datasets.loader import Dataset
from repro.dynamic.mutation import MutationBatch
from repro.errors import MutationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.normalize import gcn_normalize


def _flat_positions(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Flat indices of concatenated segments ``[starts[i], +lens[i])``."""
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.cumsum(lens) - lens
    return np.repeat(starts.astype(np.int64), lens) + (
        np.arange(total, dtype=np.int64) - np.repeat(offsets, lens)
    )


def _splice_rows(
    csr: CSRMatrix,
    shape: Tuple[int, int],
    rows: np.ndarray,
    row_counts: np.ndarray,
    entry_cols: np.ndarray,
    entry_vals: np.ndarray,
) -> CSRMatrix:
    """A new CSR with ``rows`` replaced (and the matrix possibly grown).

    ``rows`` is sorted unique; ``entry_cols``/``entry_vals`` hold the
    replacement rows' entries concatenated in row-major, column-sorted
    order (``row_counts[i]`` entries for ``rows[i]``). Rows beyond the
    old row count start empty. Untouched rows are block-copied.
    """
    n_old = csr.shape[0]
    n_new = shape[0]
    old_counts = np.diff(csr.indptr)
    counts = np.zeros(n_new, dtype=np.int64)
    counts[:n_old] = old_counts
    counts[rows] = row_counts
    indptr = np.zeros(n_new + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    indices = np.empty(total, dtype=INDEX_DTYPE)
    vals = np.empty(total, dtype=FLOAT_DTYPE)
    untouched = np.ones(n_old, dtype=bool)
    untouched[rows[rows < n_old]] = False
    keep = np.nonzero(untouched)[0]
    src = _flat_positions(csr.indptr[keep], old_counts[keep])
    dst = _flat_positions(indptr[keep], counts[keep])
    indices[dst] = csr.indices[src]
    vals[dst] = csr.vals[src]
    dst_new = _flat_positions(indptr[rows], row_counts)
    indices[dst_new] = entry_cols.astype(INDEX_DTYPE)
    vals[dst_new] = entry_vals.astype(FLOAT_DTYPE)
    return CSRMatrix(shape, indptr, indices, vals, validate=False)


def _merge_rows(
    touched: np.ndarray,
    old_rows: np.ndarray,
    old_cols: np.ndarray,
    old_vals: np.ndarray,
    drop_keys: np.ndarray,
    ins_rows: np.ndarray,
    ins_cols: np.ndarray,
    ins_vals: np.ndarray,
    n: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge old touched-row entries with the delta, column-sorted.

    Returns ``(row_counts, cols, vals)`` aligned with ``touched``. Old
    entries whose ``row * n + col`` key is in the sorted ``drop_keys``
    are removed (deletes and overwrites), then the insert entries are
    appended and the union re-sorted by ``(row, col)``.
    """
    old_keys = old_rows * n + old_cols
    if drop_keys.size:
        pos = np.searchsorted(drop_keys, old_keys)
        pos[pos == drop_keys.size] = 0
        keep = drop_keys[pos] != old_keys
    else:
        keep = np.ones(old_keys.size, dtype=bool)
    rows = np.concatenate([old_rows[keep], ins_rows])
    cols = np.concatenate([old_cols[keep], ins_cols])
    vals = np.concatenate([old_vals[keep], ins_vals])
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    row_counts = np.bincount(
        np.searchsorted(touched, rows), minlength=touched.size
    )
    return row_counts, cols, vals


@dataclass(frozen=True)
class CommitResult:
    """What one generation boundary changed (counter + invalidation feed)."""

    generation: int
    #: sorted rows of ``A_hat^T`` that were renormalised — exactly the
    #: vertices whose layer-1 embedding is stale (the delta-invalidation
    #: seed set).
    touched_rows: np.ndarray
    adjacency_rows_rebuilt: int
    normalized_rows_rebuilt: int
    edges_inserted: int
    edges_overwritten: int
    edges_deleted: int
    noop_deletes: int
    vertices_added: int
    vertices_removed: int
    num_vertices: int

    @property
    def mutations_applied(self) -> int:
        return (
            self.edges_inserted
            + self.edges_overwritten
            + self.edges_deleted
            + self.noop_deletes
            + self.vertices_added
            + self.vertices_removed
        )


class DynamicGraph:
    """A mutable graph with generation-stamped incremental CSR state."""

    def __init__(self, dataset: Dataset):
        if dataset.is_symbolic:
            raise MutationError("DynamicGraph needs a functional dataset")
        self.name = dataset.name
        self.num_classes = dataset.num_classes
        self.adj: CSRMatrix = CSRMatrix.from_coo(dataset.adjacency)
        self.adj_t: CSRMatrix = self.adj.transpose()
        self.a_hat_t: CSRMatrix = gcn_normalize(dataset.adjacency).transpose()
        n = dataset.n
        self.in_degree = np.zeros(n, dtype=FLOAT_DTYPE)
        np.add.at(
            self.in_degree, dataset.adjacency.cols, dataset.adjacency.vals
        )
        self.features = np.array(dataset.features, copy=True)
        self.labels = np.array(dataset.labels, copy=True)
        self.train_mask = np.array(dataset.train_mask, copy=True)
        self.val_mask = np.array(dataset.val_mask, copy=True)
        self.test_mask = np.array(dataset.test_mask, copy=True)
        self.alive = np.ones(n, dtype=bool)
        self.generation = 0
        self._pend_u: List[np.ndarray] = []
        self._pend_v: List[np.ndarray] = []
        self._pend_val: List[np.ndarray] = []
        self._pend_del: List[np.ndarray] = []
        self._pend_removals: List[np.ndarray] = []
        self._pend_feats: List[np.ndarray] = []
        self._pend_labels: List[np.ndarray] = []

    # -- introspection --------------------------------------------------------

    @property
    def n(self) -> int:
        return self.adj.shape[0]

    @property
    def m(self) -> int:
        return self.adj.nnz

    @property
    def pending_ops(self) -> int:
        return sum(a.size for a in self._pend_u) + sum(
            a.size for a in self._pend_removals
        ) + sum(f.shape[0] for f in self._pend_feats)

    def degrees(self) -> np.ndarray:
        """Total (in + out) stored-entry degree per vertex."""
        return (self.adj.row_nnz() + self.adj_t.row_nnz()).astype(np.int64)

    def snapshot_dataset(self) -> Dataset:
        """The current generation as a frozen :class:`Dataset`."""
        return Dataset(
            name=f"{self.name}@g{self.generation}",
            adjacency=self.adj.to_coo(),
            features=self.features,
            labels=self.labels,
            train_mask=self.train_mask,
            val_mask=self.val_mask,
            test_mask=self.test_mask,
            num_classes=self.num_classes,
        )

    def scratch_rebuild(self) -> Tuple[CSRMatrix, CSRMatrix]:
        """``(A, A_hat^T)`` rebuilt from scratch off the live edge set.

        The parity oracle: runs the exact seed-code path (canonical COO
        -> :meth:`CSRMatrix.from_coo` -> :func:`gcn_normalize` ->
        :meth:`~CSRMatrix.transpose`) with no incremental state; the
        incremental matrices must :meth:`~CSRMatrix.equals` these.
        """
        coo = self.adj.to_coo()
        return CSRMatrix.from_coo(coo), gcn_normalize(coo).transpose()

    # -- the write path -------------------------------------------------------

    def apply(self, batch: MutationBatch) -> int:
        """Buffer one mutation batch; returns the pending-op count.

        Nothing becomes visible until :meth:`commit` — reads between
        ``apply`` and ``commit`` see the previous generation, which is
        what gives the serving engine clean generation boundaries.
        """
        n_limit = self.n + sum(f.shape[0] for f in self._pend_feats)
        if batch.add_features is not None:
            if batch.add_features.shape[1] != self.features.shape[1]:
                raise MutationError(
                    f"batch {batch.batch_id}: added features have width "
                    f"{batch.add_features.shape[1]}, graph has "
                    f"{self.features.shape[1]}"
                )
            labels = batch.add_labels
            if labels is not None and labels.size and (
                labels.min() < 0 or labels.max() >= self.num_classes
            ):
                raise MutationError(
                    f"batch {batch.batch_id}: added labels out of range "
                    f"[0, {self.num_classes})"
                )
            n_limit += batch.add_features.shape[0]
            self._pend_feats.append(batch.add_features)
            self._pend_labels.append(
                labels
                if labels is not None
                else np.zeros(batch.add_features.shape[0], dtype=np.int64)
            )
        for name, edges in (
            ("insert", batch.insert_edges),
            ("delete", batch.delete_edges),
        ):
            if edges.size and (edges.min() < 0 or edges.max() >= n_limit):
                raise MutationError(
                    f"batch {batch.batch_id}: {name} endpoint out of range "
                    f"[0, {n_limit})"
                )
            in_old = edges[edges < self.n] if edges.size else edges
            if in_old.size and not self.alive[in_old].all():
                raise MutationError(
                    f"batch {batch.batch_id}: {name} touches a removed vertex"
                )
            if name == "insert" and edges.size and (
                edges[:, 0] == edges[:, 1]
            ).any():
                raise MutationError(
                    f"batch {batch.batch_id}: self-loop insert"
                )
        rem = batch.remove_vertices
        if rem.size:
            if rem.min() < 0 or rem.max() >= n_limit:
                raise MutationError(
                    f"batch {batch.batch_id}: removal out of range "
                    f"[0, {n_limit})"
                )
            in_old = rem[rem < self.n]
            if in_old.size and not self.alive[in_old].all():
                raise MutationError(
                    f"batch {batch.batch_id}: removing an already-removed "
                    f"vertex"
                )
            self._pend_removals.append(rem.astype(np.int64))
        u = np.concatenate(
            [batch.insert_edges[:, 0], batch.delete_edges[:, 0]]
        ).astype(np.int64)
        v = np.concatenate(
            [batch.insert_edges[:, 1], batch.delete_edges[:, 1]]
        ).astype(np.int64)
        val = np.concatenate(
            [
                batch.insert_vals,
                np.zeros(batch.delete_edges.shape[0], dtype=FLOAT_DTYPE),
            ]
        )
        is_del = np.concatenate(
            [
                np.zeros(batch.insert_edges.shape[0], dtype=bool),
                np.ones(batch.delete_edges.shape[0], dtype=bool),
            ]
        )
        self._pend_u.append(u)
        self._pend_v.append(v)
        self._pend_val.append(val)
        self._pend_del.append(is_del)
        return self.pending_ops

    def commit(self) -> CommitResult:
        """Merge the delta buffer; advance to the next generation.

        An empty buffer is a no-op: no generation bump, current matrices
        returned untouched.
        """
        if self.pending_ops == 0 and not self._pend_feats:
            return CommitResult(
                generation=self.generation,
                touched_rows=np.empty(0, dtype=np.int64),
                adjacency_rows_rebuilt=0,
                normalized_rows_rebuilt=0,
                edges_inserted=0,
                edges_overwritten=0,
                edges_deleted=0,
                noop_deletes=0,
                vertices_added=0,
                vertices_removed=0,
                num_vertices=self.n,
            )
        n_old = self.n
        feats = (
            np.concatenate(self._pend_feats)
            if self._pend_feats
            else np.empty((0, self.features.shape[1]), dtype=FLOAT_DTYPE)
        )
        add_labels = (
            np.concatenate(self._pend_labels)
            if self._pend_labels
            else np.empty(0, dtype=self.labels.dtype)
        )
        k_add = feats.shape[0]
        n_new = n_old + k_add
        u = (
            np.concatenate(self._pend_u)
            if self._pend_u
            else np.empty(0, dtype=np.int64)
        )
        v = (
            np.concatenate(self._pend_v)
            if self._pend_v
            else np.empty(0, dtype=np.int64)
        )
        val = (
            np.concatenate(self._pend_val)
            if self._pend_val
            else np.empty(0, dtype=FLOAT_DTYPE)
        )
        is_del = (
            np.concatenate(self._pend_del)
            if self._pend_del
            else np.empty(0, dtype=bool)
        )
        removals = (
            np.unique(np.concatenate(self._pend_removals))
            if self._pend_removals
            else np.empty(0, dtype=np.int64)
        )

        if removals.size:
            # expand each removal into delete ops over every incident
            # edge — existing (from A and A^T) and same-window pending —
            # appended last so they win the per-key dedup below.
            exist_rem = removals[removals < n_old]
            out_lens = np.diff(self.adj.indptr)[exist_rem]
            out_pos = _flat_positions(self.adj.indptr[exist_rem], out_lens)
            in_lens = np.diff(self.adj_t.indptr)[exist_rem]
            in_pos = _flat_positions(self.adj_t.indptr[exist_rem], in_lens)
            pend_hit = np.isin(u, removals) | np.isin(v, removals)
            ru = np.concatenate(
                [
                    np.repeat(exist_rem, out_lens),
                    self.adj_t.indices[in_pos].astype(np.int64),
                    u[pend_hit],
                ]
            )
            rv = np.concatenate(
                [
                    self.adj.indices[out_pos].astype(np.int64),
                    np.repeat(exist_rem, in_lens),
                    v[pend_hit],
                ]
            )
            u = np.concatenate([u, ru])
            v = np.concatenate([v, rv])
            val = np.concatenate(
                [val, np.zeros(ru.size, dtype=FLOAT_DTYPE)]
            )
            is_del = np.concatenate([is_del, np.ones(ru.size, dtype=bool)])

        # per-edge-key last-writer-wins dedup.
        if u.size:
            key = u * n_new + v
            order = np.lexsort((np.arange(u.size), key))
            key_sorted = key[order]
            last = np.empty(u.size, dtype=bool)
            last[-1] = True
            np.not_equal(key_sorted[1:], key_sorted[:-1], out=last[:-1])
            win = order[last]
            u, v, val, is_del = u[win], v[win], val[win], is_del[win]

        # membership of each op key in the current A (noop detection).
        cand_rows = np.unique(u)
        cand_lens = np.diff(self.adj.indptr)[cand_rows[cand_rows < n_old]]
        cand_in_old = cand_rows[cand_rows < n_old]
        pos = _flat_positions(self.adj.indptr[cand_in_old], cand_lens)
        old_rows = np.repeat(cand_in_old, cand_lens)
        old_cols = self.adj.indices[pos].astype(np.int64)
        old_vals = self.adj.vals[pos]
        old_keys = old_rows * n_new + old_cols  # sorted: row-major scan
        op_keys = u * n_new + v
        if old_keys.size:
            loc = np.searchsorted(old_keys, op_keys)
            loc[loc == old_keys.size] = 0
            exists = old_keys[loc] == op_keys
        else:
            exists = np.zeros(op_keys.size, dtype=bool)

        effective = ~is_del | exists
        eu, ev = u[effective], v[effective]
        eval_, edel = val[effective], is_del[effective]
        touched_a = np.unique(eu)
        touched_at = np.unique(ev)

        # new content of the touched A rows (and, transposed, A^T rows).
        in_touched = np.isin(old_rows, touched_a)
        drop = np.sort((eu * n_new + ev))
        ins = ~edel
        a_counts, a_cols, a_vals = _merge_rows(
            touched_a,
            old_rows[in_touched],
            old_cols[in_touched],
            old_vals[in_touched],
            drop,
            eu[ins],
            ev[ins],
            eval_[ins],
            n_new,
        )
        # A^T: same survivors/inserts with (row, col) swapped. Old A^T
        # entries of the touched columns come from adj_t directly.
        t_lens = np.diff(self.adj_t.indptr)[touched_at[touched_at < n_old]]
        t_in_old = touched_at[touched_at < n_old]
        t_pos = _flat_positions(self.adj_t.indptr[t_in_old], t_lens)
        t_rows = np.repeat(t_in_old, t_lens)
        t_cols = self.adj_t.indices[t_pos].astype(np.int64)
        t_vals = self.adj_t.vals[t_pos]
        drop_t = np.sort((ev * n_new + eu))
        at_counts, at_cols, at_vals = _merge_rows(
            touched_at, t_rows, t_cols, t_vals, drop_t,
            ev[ins], eu[ins], eval_[ins], n_new,
        )

        new_adj = _splice_rows(
            self.adj, (n_new, n_new), touched_a, a_counts, a_cols, a_vals
        )
        new_adj_t = _splice_rows(
            self.adj_t, (n_new, n_new), touched_at, at_counts, at_cols,
            at_vals,
        )

        # in-degree of the touched columns, re-accumulated in the exact
        # element order gcn_normalize uses (source-ascending np.add.at).
        deg = np.zeros(n_new, dtype=FLOAT_DTYPE)
        deg[:n_old] = self.in_degree
        deg[touched_at] = 0.0
        np.add.at(deg, np.repeat(touched_at, at_counts), at_vals)
        inv = np.ones(touched_at.size, dtype=FLOAT_DTYPE)
        dt = deg[touched_at]
        nz = dt != 0
        inv[nz] = 1.0 / dt[nz]
        ahat_vals = at_vals.astype(FLOAT_DTYPE) * np.repeat(
            inv, at_counts
        )
        new_a_hat_t = _splice_rows(
            self.a_hat_t, (n_new, n_new), touched_at, at_counts, at_cols,
            ahat_vals,
        )

        # swap in the new generation's state.
        self.adj, self.adj_t, self.a_hat_t = new_adj, new_adj_t, new_a_hat_t
        self.in_degree = deg
        if k_add:
            self.features = np.concatenate([self.features, feats])
            self.labels = np.concatenate([self.labels, add_labels])
            pad = np.zeros(k_add, dtype=bool)
            self.train_mask = np.concatenate([self.train_mask, pad])
            self.val_mask = np.concatenate([self.val_mask, pad])
            self.test_mask = np.concatenate([self.test_mask, pad])
            self.alive = np.concatenate(
                [self.alive, np.ones(k_add, dtype=bool)]
            )
        if removals.size:
            self.alive[removals] = False
            self.train_mask[removals] = False
            self.val_mask[removals] = False
            self.test_mask[removals] = False
        self.generation += 1
        result = CommitResult(
            generation=self.generation,
            touched_rows=touched_at,
            adjacency_rows_rebuilt=int(touched_a.size),
            normalized_rows_rebuilt=int(touched_at.size),
            edges_inserted=int((ins & ~exists[effective]).sum()),
            edges_overwritten=int((ins & exists[effective]).sum()),
            edges_deleted=int(edel.sum()),
            noop_deletes=int((is_del & ~exists).sum()),
            vertices_added=k_add,
            vertices_removed=int(removals.size),
            num_vertices=n_new,
        )
        self._pend_u.clear()
        self._pend_v.clear()
        self._pend_val.clear()
        self._pend_del.clear()
        self._pend_removals.clear()
        self._pend_feats.clear()
        self._pend_labels.clear()
        return result

    def apply_and_commit(self, batch: MutationBatch) -> CommitResult:
        """Convenience: one batch per generation (the serving default)."""
        self.apply(batch)
        return self.commit()
