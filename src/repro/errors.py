"""Exception hierarchy for the MG-GCN reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure classes (device OOM, invalid
partition, shape mismatches, scheduling bugs).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class DeviceError(ReproError):
    """Base class for virtual-device failures."""


class DeviceOutOfMemoryError(DeviceError):
    """Raised when an allocation would exceed a device's memory capacity.

    Mirrors ``cudaErrorMemoryAllocation``: the paper's Figures 5/10/12 mark
    configurations that run out of memory, and the benchmarks reproduce
    those cells by catching this exception.
    """

    def __init__(self, device: str, requested: int, in_use: int, capacity: int):
        self.device = device
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity
        super().__init__(
            f"{device}: out of memory: requested {requested} B with "
            f"{in_use} B in use of {capacity} B capacity"
        )


class AllocationError(DeviceError):
    """Raised on invalid allocator usage (double free, foreign handle)."""


class StreamError(DeviceError):
    """Raised on invalid stream/event usage (e.g. waiting on an unrecorded event)."""


class ShapeError(ReproError):
    """Raised when tensor/matrix shapes are incompatible for an operation."""


class DTypeError(ReproError):
    """Raised when tensor dtypes are incompatible for an operation."""


class ModeError(ReproError):
    """Raised when mixing FUNCTIONAL and SYMBOLIC tensors in one kernel."""


class PartitionError(ReproError):
    """Raised for malformed partition vectors or inconsistent tilings."""


class CommunicationError(ReproError):
    """Raised for invalid collective arguments (rank mismatch, buffer sizes)."""


class CollectiveMismatchError(CommunicationError):
    """Raised when the ranks of a collective disagree on op or shape.

    On real NCCL such a rendezvous mismatch silently corrupts data or
    deadlocks; the simulation turns it into an immediate, diagnosable
    error listing each rank's view of the call.
    """


class CollectiveTimeoutError(CommunicationError):
    """Raised when a collective exhausts its retry budget.

    Mirrors NCCL's watchdog timeout: the op was issued, some
    participant never arrived (transient link/collective fault), and
    every retry attempt failed.
    """

    def __init__(self, op: str, attempts: int, elapsed: float):
        self.op = op
        self.attempts = attempts
        self.elapsed = elapsed
        super().__init__(
            f"collective {op!r} timed out after {attempts} attempt(s) "
            f"({elapsed:.6f} s on the simulated timeline)"
        )


class DeviceFailedError(DeviceError):
    """Raised when an op or collective touches a permanently failed device.

    ``failed_at`` is the simulated time of the injected failure,
    ``detected_at`` the simulated time at which the failure became
    observable (op submission, or collective timeout expiry) — elastic
    recovery restarts the clock from ``detected_at``.
    """

    def __init__(self, device: str, rank: int, failed_at: float, detected_at: float):
        self.device = device
        self.rank = rank
        self.failed_at = failed_at
        self.detected_at = detected_at
        super().__init__(
            f"{device} (rank {rank}) failed at t={failed_at:.6f}s "
            f"(detected at t={detected_at:.6f}s)"
        )


class RecoveryError(ReproError):
    """Raised when elastic recovery itself cannot proceed (no survivors,
    failure budget exhausted, unrecoverable mode)."""


class CheckpointError(ReproError):
    """Raised when a checkpoint file is corrupt (checksum mismatch,
    truncated payload)."""


class TopologyError(ReproError):
    """Raised when a machine topology is malformed or a route is missing."""


class GraphFormatError(ReproError):
    """Raised by the I/O layer when parsing a malformed graph file."""


class DatasetError(ReproError):
    """Raised for unknown dataset names or invalid generator parameters."""


class ConfigurationError(ReproError):
    """Raised for invalid trainer/model configuration."""


class MutationError(ReproError):
    """Raised for invalid graph mutations (edge endpoints out of range,
    operations touching removed vertices, malformed batches)."""


class PlanError(ReproError):
    """Raised when an execution plan cannot be captured or replayed
    (capture attempted under an active fault plan, replay of a finalized
    plan against a changed world, ...)."""
