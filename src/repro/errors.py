"""Exception hierarchy for the MG-GCN reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure classes (device OOM, invalid
partition, shape mismatches, scheduling bugs).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class DeviceError(ReproError):
    """Base class for virtual-device failures."""


class DeviceOutOfMemoryError(DeviceError):
    """Raised when an allocation would exceed a device's memory capacity.

    Mirrors ``cudaErrorMemoryAllocation``: the paper's Figures 5/10/12 mark
    configurations that run out of memory, and the benchmarks reproduce
    those cells by catching this exception.
    """

    def __init__(self, device: str, requested: int, in_use: int, capacity: int):
        self.device = device
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity
        super().__init__(
            f"{device}: out of memory: requested {requested} B with "
            f"{in_use} B in use of {capacity} B capacity"
        )


class AllocationError(DeviceError):
    """Raised on invalid allocator usage (double free, foreign handle)."""


class StreamError(DeviceError):
    """Raised on invalid stream/event usage (e.g. waiting on an unrecorded event)."""


class ShapeError(ReproError):
    """Raised when tensor/matrix shapes are incompatible for an operation."""


class DTypeError(ReproError):
    """Raised when tensor dtypes are incompatible for an operation."""


class ModeError(ReproError):
    """Raised when mixing FUNCTIONAL and SYMBOLIC tensors in one kernel."""


class PartitionError(ReproError):
    """Raised for malformed partition vectors or inconsistent tilings."""


class CommunicationError(ReproError):
    """Raised for invalid collective arguments (rank mismatch, buffer sizes)."""


class TopologyError(ReproError):
    """Raised when a machine topology is malformed or a route is missing."""


class GraphFormatError(ReproError):
    """Raised by the I/O layer when parsing a malformed graph file."""


class DatasetError(ReproError):
    """Raised for unknown dataset names or invalid generator parameters."""


class ConfigurationError(ReproError):
    """Raised for invalid trainer/model configuration."""
