"""A training loop with validation tracking and early stopping.

The paper reports end-to-end results like "a test accuracy of 95.95% …
after 466 epochs … in only 1 minute" — epochs-until-target plus total
(simulated) wall time. :class:`TrainingLoop` provides that protocol for
any trainer exposing ``train_epoch() -> EpochStats`` and
``evaluate(split) -> float`` (MG-GCN, the DGL-like baseline, …).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.stats import EpochStats
from repro.errors import ConfigurationError, DeviceFailedError


@dataclass
class TrainingHistory:
    """Per-epoch records accumulated by the loop."""

    losses: List[float] = field(default_factory=list)
    val_accuracies: List[Optional[float]] = field(default_factory=list)
    epoch_times: List[float] = field(default_factory=list)
    #: epoch numbers (1-based) at which an elastic recovery happened.
    recoveries: List[int] = field(default_factory=list)
    # incremental accumulator behind total_simulated_time: the running
    # sum and how many epoch_times entries it already covers.
    _time_sum: float = field(default=0.0, init=False, repr=False, compare=False)
    _time_cursor: int = field(default=0, init=False, repr=False, compare=False)

    @property
    def epochs(self) -> int:
        return len(self.losses)

    @property
    def total_simulated_time(self) -> float:
        """Total simulated seconds across all recorded epochs.

        Accumulated incrementally: each call only sums the epochs
        appended since the last one (O(new) instead of O(all), which
        mattered once per-epoch callbacks started reading it every
        epoch). Entries appended externally are picked up by the
        catch-up loop; replacing/truncating the list resets the sum.
        """
        times = self.epoch_times
        n = len(times)
        if n < self._time_cursor:
            self._time_sum = 0.0
            self._time_cursor = 0
        while self._time_cursor < n:
            self._time_sum += times[self._time_cursor]
            self._time_cursor += 1
        return self._time_sum

    @property
    def best_val_accuracy(self) -> Optional[float]:
        vals = [a for a in self.val_accuracies if a is not None]
        return max(vals) if vals else None


class EarlyStopping:
    """Patience-based early stopping on validation accuracy."""

    def __init__(self, patience: int = 10, min_delta: float = 0.0):
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise ConfigurationError(f"min_delta must be >= 0, got {min_delta}")
        self.patience = patience
        self.min_delta = min_delta
        self.best: Optional[float] = None
        self.stale = 0

    def update(self, value: float) -> bool:
        """Record a new validation value; returns True to STOP."""
        if self.best is None or value > self.best + self.min_delta:
            self.best = value
            self.stale = 0
            return False
        self.stale += 1
        return self.stale >= self.patience


class TrainingLoop:
    """Drives a trainer for up to ``max_epochs``, with optional stopping.

    Parameters
    ----------
    trainer:
        Any object with ``train_epoch()`` and (if validation is used)
        ``evaluate(split)``.
    max_epochs:
        Hard epoch cap.
    eval_every:
        Validate every N epochs (0 disables validation entirely).
    early_stopping:
        Optional :class:`EarlyStopping` applied to validation accuracy.
    target_accuracy:
        Stop as soon as validation accuracy reaches this value (the
        paper's epochs-to-accuracy protocol).
    on_epoch:
        Optional callback ``(epoch, stats, val_acc)`` for logging.
    recover_on_failure:
        When True and the trainer exposes ``recover(exc)`` (e.g.
        :class:`~repro.resilience.recovery.ElasticTrainer` with
        ``auto_recover=False``), a :class:`DeviceFailedError` raised
        mid-epoch triggers recovery and the epoch is retried on the
        shrunken world instead of aborting the loop.
    capture_epochs:
        Opt-in epoch capture & replay (:mod:`repro.plan`): sets the
        trainer's ``capture_epochs`` flag so epoch 1 is recorded and
        later epochs replay its execution plan. The trainer itself
        falls back to eager scheduling while a fault plan is active and
        recaptures after elastic recovery re-partitions the graph.
        Requires a trainer that supports the flag.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` hub. The loop
        attaches it to the trainer's engine (re-attaching after elastic
        recovery swaps the engine), wraps every epoch in an
        ``epoch-<n>``-correlated span, records loss/epoch-time
        instruments, and samples the derived per-epoch gauges (overlap
        efficiency, straggler skew, roofline fractions) from the
        epoch's trace.
    anomaly_detector:
        Optional :class:`~repro.telemetry.slo.EpochTimeAnomalyDetector`
        scoring each epoch time against the rolling median + MAD of
        recent epochs. Defaults to a fresh detector whenever a
        telemetry hub is attached; pass one explicitly to tune the
        window, or without a hub to still collect ``.anomalies``.
    critpath_every:
        Also run critical-path attribution every N epochs (0 = only on
        anomalies). Reports land in :attr:`critpath_reports` and the
        ``repro_critpath_*`` gauges.
    """

    def __init__(
        self,
        trainer,
        max_epochs: int = 100,
        eval_every: int = 5,
        eval_split: str = "val",
        early_stopping: Optional[EarlyStopping] = None,
        target_accuracy: Optional[float] = None,
        on_epoch: Optional[Callable[[int, EpochStats, Optional[float]], None]] = None,
        recover_on_failure: bool = False,
        capture_epochs: bool = False,
        telemetry=None,
        anomaly_detector=None,
        critpath_every: int = 0,
    ):
        if max_epochs < 1:
            raise ConfigurationError(f"max_epochs must be >= 1, got {max_epochs}")
        if eval_every < 0:
            raise ConfigurationError(f"eval_every must be >= 0, got {eval_every}")
        if target_accuracy is not None and not (0.0 < target_accuracy <= 1.0):
            raise ConfigurationError(
                f"target_accuracy must be in (0, 1], got {target_accuracy}"
            )
        if (early_stopping or target_accuracy) and eval_every == 0:
            raise ConfigurationError(
                "early stopping / target accuracy need eval_every > 0"
            )
        self.trainer = trainer
        self.max_epochs = max_epochs
        self.eval_every = eval_every
        self.eval_split = eval_split
        self.early_stopping = early_stopping
        self.target_accuracy = target_accuracy
        self.on_epoch = on_epoch
        self.recover_on_failure = recover_on_failure
        if capture_epochs:
            if not hasattr(trainer, "capture_epochs"):
                raise ConfigurationError(
                    "capture_epochs=True requires a trainer supporting "
                    "epoch capture & replay (repro.plan)"
                )
            trainer.capture_epochs = True
        if critpath_every < 0:
            raise ConfigurationError(
                f"critpath_every must be >= 0, got {critpath_every}"
            )
        self.telemetry = telemetry
        if anomaly_detector is None and telemetry is not None:
            from repro.telemetry.slo import EpochTimeAnomalyDetector

            anomaly_detector = EpochTimeAnomalyDetector()
        #: rolling median + MAD detector over epoch times; always on
        #: when a telemetry hub is attached.
        self.anomaly_detector = anomaly_detector
        #: analyze the critical path every N epochs (0 = only when an
        #: epoch-time anomaly fires).
        self.critpath_every = critpath_every
        #: epoch (1-based) -> CritPathReport for analyzed epochs.
        self.critpath_reports = {}
        self.history = TrainingHistory()
        self.stopped_reason: Optional[str] = None

    # -- telemetry plumbing --------------------------------------------------

    def _engine(self):
        ctx = getattr(self.trainer, "ctx", None)
        return getattr(ctx, "engine", None)

    def _attach_telemetry(self) -> None:
        """Point the trainer's (possibly new) engine at the hub.

        Elastic recovery rebuilds the trainer around a fresh SimContext,
        so this runs before every epoch, not just once.
        """
        engine = self._engine()
        if engine is not None:
            engine.telemetry = self.telemetry

    def _clock(self) -> float:
        ctx = getattr(self.trainer, "ctx", None)
        return ctx.elapsed() if ctx is not None else 0.0

    def _check_epoch_health(self, epoch: int, stats: EpochStats) -> None:
        """Anomaly-score the epoch time; attribute slow epochs.

        Anomalous epochs (and every ``critpath_every``-th one) get a
        critical-path report published into the registry, kept in
        :attr:`critpath_reports`, and noted in the flight recorder — so
        "why was epoch 7 slow" is answered from the run itself.
        """
        telemetry = self.telemetry
        anomaly = None
        if self.anomaly_detector is not None:
            anomaly = self.anomaly_detector.update(epoch, stats.epoch_time)
            if telemetry is not None:
                if anomaly is not None:
                    telemetry.inc("repro_epoch_anomalies_total")
                    telemetry.set_gauge("repro_epoch_anomaly_z", anomaly.z)
                    flight_note = getattr(telemetry, "flight_note", None)
                    if flight_note is not None:
                        flight_note(
                            "epoch_anomaly",
                            time=self._clock(),
                            epoch=epoch,
                            seconds=stats.epoch_time,
                            median=anomaly.median,
                            z=anomaly.z,
                        )
        scheduled = self.critpath_every and epoch % self.critpath_every == 0
        if (anomaly is None and not scheduled) or telemetry is None:
            return
        trace = getattr(stats, "trace", None)
        if not trace:
            return
        from repro.telemetry.critpath import critical_path, publish_critpath

        report = critical_path(trace)
        self.critpath_reports[epoch] = report
        publish_critpath(telemetry, report, epoch=epoch)

    def _sample_derived(self, stats: EpochStats, epoch: int) -> None:
        trace = getattr(stats, "trace", None)
        if not trace:
            return
        from repro.telemetry.derived import sample_epoch

        ctx = getattr(self.trainer, "ctx", None)
        cost_models = getattr(self.trainer, "cost_models", None)
        sample_epoch(
            self.telemetry,
            trace,
            machine=getattr(ctx, "machine", None),
            cost_model=cost_models[0] if cost_models else None,
            epoch_time=stats.epoch_time,
            epoch=epoch,
        )

    def run(self) -> TrainingHistory:
        """Train until a stop condition fires; returns the history."""
        telemetry = self.telemetry
        for epoch in range(1, self.max_epochs + 1):
            span = None
            if telemetry is not None:
                self._attach_telemetry()
                span = telemetry.tracer.begin(
                    f"epoch-{epoch}",
                    self._clock(),
                    correlation=f"epoch-{epoch}",
                    category="training",
                )
            try:
                while True:
                    try:
                        stats = self.trainer.train_epoch()
                    except DeviceFailedError as exc:
                        recover = getattr(self.trainer, "recover", None)
                        if not self.recover_on_failure or not callable(recover):
                            raise
                        recover(exc)
                        self.history.recoveries.append(epoch)
                        if telemetry is not None:
                            self._attach_telemetry()
                        continue  # retry this epoch on the shrunken world
                    break
            finally:
                if span is not None:
                    telemetry.tracer.end(span, self._clock())
            if telemetry is not None:
                telemetry.inc("repro_train_epochs_total")
                telemetry.observe("repro_train_epoch_seconds", stats.epoch_time)
                if stats.loss is not None:
                    telemetry.set_gauge("repro_train_loss", stats.loss)
                self._sample_derived(stats, epoch)
            self._check_epoch_health(epoch, stats)
            val_acc: Optional[float] = None
            if self.eval_every and epoch % self.eval_every == 0:
                val_acc = self.trainer.evaluate(self.eval_split)
                if telemetry is not None:
                    telemetry.set_gauge("repro_val_accuracy", val_acc)
            self.history.losses.append(
                stats.loss if stats.loss is not None else float("nan")
            )
            self.history.val_accuracies.append(val_acc)
            self.history.epoch_times.append(stats.epoch_time)
            if self.on_epoch is not None:
                self.on_epoch(epoch, stats, val_acc)
            if val_acc is not None:
                if (
                    self.target_accuracy is not None
                    and val_acc >= self.target_accuracy
                ):
                    self.stopped_reason = "target_accuracy"
                    break
                if self.early_stopping is not None and self.early_stopping.update(
                    val_acc
                ):
                    self.stopped_reason = "early_stopping"
                    break
        else:
            self.stopped_reason = "max_epochs"
        return self.history
