"""Training-loop utilities over any trainer (MG-GCN or baselines)."""

from repro.training.loop import TrainingLoop, TrainingHistory, EarlyStopping

__all__ = ["TrainingLoop", "TrainingHistory", "EarlyStopping"]
