"""Shared machinery for the per-figure experiment drivers."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.stats import EpochStats
from repro.errors import DeviceOutOfMemoryError


@dataclass
class ExperimentResult:
    """A labelled grid of measurements plus free-form metadata.

    ``cells`` maps a row label to a mapping of column label -> value;
    ``None`` marks an out-of-memory cell (printed as the paper's "OOM").
    """

    name: str
    cells: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def set(self, row: str, col: str, value: Optional[float]) -> None:
        self.cells.setdefault(row, {})[col] = value

    def get(self, row: str, col: str) -> Optional[float]:
        return self.cells.get(row, {}).get(col)

    def rows(self) -> List[str]:
        return list(self.cells)

    def format_cell(self, row: str, col: str, fmt: str = "{:.3f}") -> str:
        value = self.get(row, col)
        return "OOM" if value is None else fmt.format(value)


def median_epoch_time(
    make_trainer: Callable[[], Any], warmup: int = 1, epochs: int = 3
) -> float:
    """Median simulated epoch time over ``epochs`` measured epochs.

    A warm-up epoch absorbs one-time effects (none in the simulator, but
    keeping the protocol identical to the paper's methodology is free).
    """
    trainer = make_trainer()
    for _ in range(warmup):
        trainer.train_epoch()
    times = [trainer.train_epoch().epoch_time for _ in range(max(epochs, 1))]
    return statistics.median(times)


def run_or_oom(
    make_trainer: Callable[[], Any], warmup: int = 0, epochs: int = 1
) -> Optional[float]:
    """Median epoch time, or ``None`` if the configuration runs out of
    device memory (the paper's OOM cells)."""
    try:
        return median_epoch_time(make_trainer, warmup=warmup, epochs=epochs)
    except DeviceOutOfMemoryError:
        return None


def last_epoch_stats(make_trainer: Callable[[], Any], epochs: int = 1) -> EpochStats:
    """Stats of the final epoch of a fresh trainer (or raises OOM)."""
    trainer = make_trainer()
    stats = None
    for _ in range(max(epochs, 1)):
        stats = trainer.train_epoch()
    assert stats is not None
    return stats
