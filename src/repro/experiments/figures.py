"""Experiment drivers: one function per paper table/figure.

Every function returns an :class:`ExperimentResult` (or a small dict for
the timeline figures) and optionally prints the same rows/series the
paper reports. The benchmark files under ``benchmarks/`` are thin
wrappers over these drivers, so a user can also call them directly.

Protocol notes
--------------
* Paper-scale runs (Figs. 5, 9–11, 13–14; Table 3) execute in SYMBOLIC
  mode: full Table-1 sizes, metadata-only tensors, exact cost and
  memory accounting, OOM cells included.
* Ordering-sensitive runs (Figs. 6–8) execute FUNCTIONALLY on scaled
  datasets: the permutation effect needs a real nonzero layout.
* CAGNET appears in symbolic sweeps with ``permute=True`` (symbolic
  mode models the balanced distribution); its missing permutation is
  studied functionally in Figs. 6/7. This under-states CAGNET's
  disadvantage, never overstates MG-GCN's — noted in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.cagnet import (
    CAGNETTrainer,
    cagnet_15d_comm_time,
    cagnet_1d_comm_time,
)
from repro.baselines.dgl_like import DGLLikeTrainer
from repro.baselines.distgnn import (
    DISTGNN_RESULTS,
    distgnn_best,
    energy_ratio,
)
from repro.core.trainer import MGGCNTrainer, TrainerConfig
from repro.datasets.loader import SymbolicDataset, load_dataset
from repro.datasets.specs import FIGURE_ORDER, get_spec, table1_rows
from repro.experiments.runner import ExperimentResult, last_epoch_stats, run_or_oom
from repro.hardware.machines import dgx1, dgx_a100
from repro.hardware.spec import MachineSpec
from repro.nn.model import GCNModelSpec
from repro.profiling.breakdown import breakdown_percentages
from repro.profiling.memory import max_layers_that_fit
from repro.profiling.timeline import extract_stage_timeline, render_timeline, spmm_span
from repro.utils.format import ascii_table, format_seconds
from repro.config import GiB

#: GPU counts swept throughout the evaluation.
GPU_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)

#: Functional down-scales per dataset, chosen so each scaled instance
#: builds and trains in seconds while preserving the average degree.
FUNCTIONAL_SCALES: Dict[str, float] = {
    "cora": 1.0,
    "arxiv": 0.05,
    "products": 0.004,
    "proteins": 0.0008,
    "reddit": 0.01,
}


def _paper_model(dataset: SymbolicDataset, which: int = 1) -> GCNModelSpec:
    return GCNModelSpec.paper_model(which, dataset.d0, dataset.num_classes)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def table1(verbose: bool = False) -> ExperimentResult:
    """Dataset statistics, straight from the registry."""
    result = ExperimentResult("table1")
    for name, n, m, d0, classes, k in table1_rows():
        result.set(name, "n", float(n))
        result.set(name, "m", float(m))
        result.set(name, "d0", float(d0))
        result.set(name, "classes", float(classes))
        result.set(name, "avg_degree", float(k))
    if verbose:
        print(
            ascii_table(
                ["dataset", "n", "m", "d(0)", "d(L)", "k"],
                [
                    (name, n, m, d0, classes, k)
                    for name, n, m, d0, classes, k in table1_rows()
                ],
            )
        )
    return result


# ---------------------------------------------------------------------------
# Figure 5: runtime breakdown
# ---------------------------------------------------------------------------


def fig5_breakdown(
    machine: Optional[MachineSpec] = None, verbose: bool = False
) -> ExperimentResult:
    """Per-op share of epoch time, per dataset and GPU count (DGX-V100)."""
    machine = machine or dgx1()
    result = ExperimentResult("fig5")
    printable: List[Tuple[str, object]] = []
    for name in FIGURE_ORDER:
        ds = load_dataset(name, symbolic=True)
        model = _paper_model(ds)
        for P in GPU_COUNTS:
            row = f"{name}/{P}"
            try:
                stats = last_epoch_stats(
                    lambda: MGGCNTrainer(ds, model, machine=machine, num_gpus=P)
                )
            except Exception:
                for cat in ("activation", "adam", "gemm", "loss", "spmm"):
                    result.set(row, cat, None)
                printable.append((row, "OOM"))
                continue
            pct = breakdown_percentages(stats.trace)
            for cat, value in pct.items():
                result.set(row, cat, value)
            printable.append(
                (row, " ".join(f"{c}={v:.1f}%" for c, v in sorted(pct.items())))
            )
    if verbose:
        for row, text in printable:
            print(f"{row:14s} {text}")
    return result


# ---------------------------------------------------------------------------
# Figures 6 and 8: SpMM stage timelines
# ---------------------------------------------------------------------------


def fig6_permutation_timeline(
    dataset_name: str = "products",
    scale: Optional[float] = None,
    num_gpus: int = 4,
    machine: Optional[MachineSpec] = None,
    seed: int = 11,
    verbose: bool = False,
) -> Dict[str, object]:
    """SpMM stage timeline with the original vs permuted ordering.

    Reproduces Figure 6: the original (hub-first) ordering shows a
    badly imbalanced stage 0; the permuted ordering equalises the
    stages and shortens the SpMM span.
    """
    machine = machine or dgx1()
    scale = scale if scale is not None else FUNCTIONAL_SCALES[dataset_name]
    ds = load_dataset(dataset_name, scale=scale, seed=seed)
    model = _paper_model(ds)
    out: Dict[str, object] = {}
    for label, permute in (("original", False), ("permuted", True)):
        cfg = TrainerConfig(permute=permute, overlap=False, seed=seed)
        trainer = MGGCNTrainer(ds, model, machine=machine, num_gpus=num_gpus, config=cfg)
        stats = trainer.train_epoch()
        spans = extract_stage_timeline(stats.trace, "fwd0/spmm")
        out[label] = {
            "spans": spans,
            "spmm_time": spmm_span(spans),
            "epoch_time": stats.epoch_time,
        }
        if verbose:
            print(f"--- {label} ordering: SpMM "
                  f"{format_seconds(spmm_span(spans))} ---")
            print(render_timeline(spans))
    return out


def fig8_overlap_timeline(
    dataset_name: str = "products",
    scale: Optional[float] = None,
    num_gpus: int = 4,
    machine: Optional[MachineSpec] = None,
    seed: int = 11,
    verbose: bool = False,
) -> Dict[str, object]:
    """SpMM stage timeline without vs with comm/compute overlap (Fig. 8)."""
    machine = machine or dgx1()
    scale = scale if scale is not None else FUNCTIONAL_SCALES[dataset_name]
    ds = load_dataset(dataset_name, scale=scale, seed=seed)
    model = _paper_model(ds)
    out: Dict[str, object] = {}
    for label, overlap in (("serialized", False), ("overlapped", True)):
        cfg = TrainerConfig(permute=True, overlap=overlap, seed=seed)
        trainer = MGGCNTrainer(ds, model, machine=machine, num_gpus=num_gpus, config=cfg)
        stats = trainer.train_epoch()
        spans = extract_stage_timeline(stats.trace, "fwd0/spmm")
        out[label] = {
            "spans": spans,
            "spmm_time": spmm_span(spans),
            "epoch_time": stats.epoch_time,
        }
        if verbose:
            print(f"--- {label}: SpMM {format_seconds(spmm_span(spans))} ---")
            print(render_timeline(spans))
    return out


# ---------------------------------------------------------------------------
# Figure 7: permutation + overlap epoch speedups
# ---------------------------------------------------------------------------


def fig7_perm_overlap_speedup(
    machine: Optional[MachineSpec] = None,
    datasets: Sequence[str] = FIGURE_ORDER,
    gpu_counts: Sequence[int] = GPU_COUNTS,
    seed: int = 11,
    verbose: bool = False,
) -> ExperimentResult:
    """Epoch-time speedup of permuted (and permuted+overlap) over the
    original ordering, per dataset and GPU count (Fig. 7)."""
    machine = machine or dgx1()
    result = ExperimentResult("fig7")
    for name in datasets:
        ds = load_dataset(name, scale=FUNCTIONAL_SCALES[name], seed=seed)
        model = _paper_model(ds)

        def time_of(permute: bool, overlap: bool, P: int) -> Optional[float]:
            cfg = TrainerConfig(permute=permute, overlap=overlap, seed=seed)
            return run_or_oom(
                lambda: MGGCNTrainer(ds, model, machine=machine, num_gpus=P, config=cfg)
            )

        for P in gpu_counts:
            base = time_of(False, False, P)
            perm = time_of(True, False, P)
            both = time_of(True, True, P) if P > 1 else perm
            row = f"{name}/{P}"
            result.set(row, "perm", base / perm if base and perm else None)
            result.set(row, "perm+ovlp", base / both if base and both else None)
            if verbose:
                print(
                    f"{row:14s} perm {result.format_cell(row, 'perm', '{:.2f}x')}"
                    f"  perm+ovlp {result.format_cell(row, 'perm+ovlp', '{:.2f}x')}"
                )
    return result


# ---------------------------------------------------------------------------
# Figure 9: average-degree scaling
# ---------------------------------------------------------------------------


def fig9_degree_scaling(
    machine: Optional[MachineSpec] = None,
    scales: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    gpu_counts: Sequence[int] = GPU_COUNTS,
    verbose: bool = False,
) -> ExperimentResult:
    """Speedup over the 1-GPU runtime as the average degree scales.

    The paper's BTER-generated Arxiv-profile graphs (512 features, 40
    classes) with the edge count scaled 1x..128x; symbolic mode keeps
    the full n = 169K so the cache-coverage effect matches the paper's.
    """
    machine = machine or dgx1()
    result = ExperimentResult("fig9")
    base_spec = get_spec("arxiv")
    for scale in scales:
        ds = SymbolicDataset(
            name=f"arxiv-{scale}x",
            n=169_000,
            m=base_spec.m * scale,
            d0=512,
            num_classes=40,
        )
        model = GCNModelSpec.build(512, 512, 40, 2)
        t1 = run_or_oom(
            lambda: MGGCNTrainer(ds, model, machine=machine, num_gpus=1)
        )
        for P in gpu_counts:
            tP = run_or_oom(
                lambda: MGGCNTrainer(ds, model, machine=machine, num_gpus=P)
            )
            result.set(
                f"{scale}x", f"{P}gpu", (t1 / tP) if (t1 and tP) else None
            )
        if verbose:
            cells = "  ".join(
                f"P{P}={result.format_cell(f'{scale}x', f'{P}gpu', '{:.2f}x')}"
                for P in gpu_counts
            )
            print(f"{scale:>4}x: {cells}")
    return result


# ---------------------------------------------------------------------------
# Figures 10/11 (DGX-V100) and 13/14 (DGX-A100)
# ---------------------------------------------------------------------------


def epoch_runtime_comparison(
    machine: MachineSpec,
    include_cagnet: bool,
    datasets: Sequence[str] = FIGURE_ORDER,
    gpu_counts: Sequence[int] = GPU_COUNTS,
    verbose: bool = False,
) -> ExperimentResult:
    """Epoch runtimes of MG-GCN / DGL / (CAGNET) at full Table-1 scale.

    The driver behind Figs. 10 and 13. DGL is single-GPU (the paper's
    framing: DGL lacks multi-GPU support); CAGNET is excluded on
    DGX-A100 (not CUDA-11 compatible, per the paper).
    """
    result = ExperimentResult("epoch_runtime")
    for name in datasets:
        ds = load_dataset(name, symbolic=True)
        model = _paper_model(ds)
        result.set(
            f"{name}/dgl",
            "1",
            run_or_oom(lambda: DGLLikeTrainer(ds, model, machine=machine)),
        )
        for P in gpu_counts:
            result.set(
                f"{name}/mggcn",
                str(P),
                run_or_oom(
                    lambda: MGGCNTrainer(ds, model, machine=machine, num_gpus=P)
                ),
            )
            if include_cagnet:
                result.set(
                    f"{name}/cagnet",
                    str(P),
                    run_or_oom(
                        lambda: CAGNETTrainer(
                            ds, model, machine=machine, num_gpus=P, permute=True
                        )
                    ),
                )
    if verbose:
        systems = ["dgl", "mggcn"] + (["cagnet"] if include_cagnet else [])
        for name in datasets:
            for system in systems:
                row = f"{name}/{system}"
                cols = result.cells.get(row, {})
                cells = "  ".join(
                    f"P{c}={result.format_cell(row, c, '{:.3f}s')}"
                    for c in sorted(cols, key=int)
                )
                print(f"{row:18s} {cells}")
    return result


def fig10_dgxv100_runtime(verbose: bool = False) -> ExperimentResult:
    """Epoch runtime comparison on DGX-V100 (Fig. 10)."""
    return epoch_runtime_comparison(dgx1(), include_cagnet=True, verbose=verbose)


def fig13_dgxa100_runtime(verbose: bool = False) -> ExperimentResult:
    """Epoch runtime comparison on DGX-A100 (Fig. 13)."""
    return epoch_runtime_comparison(dgx_a100(), include_cagnet=False, verbose=verbose)


def speedup_vs_dgl(
    runtime: ExperimentResult,
    datasets: Sequence[str] = FIGURE_ORDER,
    gpu_counts: Sequence[int] = GPU_COUNTS,
    include_cagnet: bool = False,
    verbose: bool = False,
) -> ExperimentResult:
    """Speedups w.r.t. single-GPU DGL (the driver behind Figs. 11/14)."""
    result = ExperimentResult("speedup_vs_dgl")
    for name in datasets:
        dgl_time = runtime.get(f"{name}/dgl", "1")
        if not dgl_time:
            continue
        systems = ["mggcn"] + (["cagnet"] if include_cagnet else [])
        for system in systems:
            for P in gpu_counts:
                t = runtime.get(f"{name}/{system}", str(P))
                result.set(
                    f"{name}/{system}", str(P), dgl_time / t if t else None
                )
        if verbose:
            for system in systems:
                row = f"{name}/{system}"
                cells = "  ".join(
                    f"P{P}={result.format_cell(row, str(P), '{:.2f}x')}"
                    for P in gpu_counts
                )
                print(f"{row:18s} {cells}")
    return result


def fig11_dgxv100_speedup(verbose: bool = False) -> ExperimentResult:
    """Speedup w.r.t. DGL on DGX-V100 (Fig. 11)."""
    runtime = fig10_dgxv100_runtime()
    return speedup_vs_dgl(runtime, include_cagnet=True, verbose=verbose)


def fig14_dgxa100_speedup(verbose: bool = False) -> ExperimentResult:
    """Speedup w.r.t. DGL on DGX-A100 (Fig. 14)."""
    runtime = fig13_dgxa100_runtime()
    return speedup_vs_dgl(runtime, include_cagnet=False, verbose=verbose)


# ---------------------------------------------------------------------------
# Figure 12: memory footprint vs layer count
# ---------------------------------------------------------------------------


def fig12_memory_footprint(
    hidden_dim: int = 512,
    budget_bytes: float = 30 * GiB,
    verbose: bool = False,
) -> ExperimentResult:
    """Max layers fitting a 30 GiB budget on Reddit, per framework (Fig. 12)."""
    ds = load_dataset("reddit", symbolic=True)
    assert isinstance(ds, SymbolicDataset)
    result = ExperimentResult("fig12")
    configs = [
        ("dgl/1gpu", 1, "eager", 3, 16),
        ("mggcn/1gpu", 1, "shared", 3, 16),
        ("cagnet/8gpu", 8, "eager", 5, 40),
        ("mggcn/8gpu", 8, "shared", 3, 16),
    ]
    for label, gpus, scheme, eager_k, adj_bytes in configs:
        layers = max_layers_that_fit(
            ds,
            hidden_dim,
            num_gpus=gpus,
            memory_budget=budget_bytes,
            scheme=scheme,
            eager_buffers_per_layer=eager_k,
            adjacency_bytes_per_edge=adj_bytes,
        )
        result.set(label, "max_layers", float(layers))
        if verbose:
            print(f"{label:14s} fits {layers} layers in "
                  f"{budget_bytes / GiB:.0f} GiB")
    return result


# ---------------------------------------------------------------------------
# Tables 2 and 3 + Section 6.6
# ---------------------------------------------------------------------------


def table2_distgnn(verbose: bool = False) -> ExperimentResult:
    """DistGNN's reported epoch times (Table 2)."""
    result = ExperimentResult("table2")
    for name, per_socket in DISTGNN_RESULTS.items():
        for sockets, t in per_socket.items():
            result.set(name, str(sockets), t)
    if verbose:
        for name, per_socket in DISTGNN_RESULTS.items():
            cells = "  ".join(f"{s}S={t}s" for s, t in sorted(per_socket.items()))
            print(f"{name:10s} {cells}")
    return result


def table3_mggcn_a100(verbose: bool = False) -> ExperimentResult:
    """MG-GCN epoch times on DGX-A100 (Table 3).

    Reddit uses the 2-layer/16-hidden model, Products/Proteins the
    3-layer/256 model, Papers the 3-layer/208 model — the §6.6 configs.
    """
    machine = dgx_a100()
    result = ExperimentResult("table3")
    configs = [
        ("reddit", 2),
        ("papers", 4),
        ("products", 3),
        ("proteins", 3),
    ]
    for name, which in configs:
        ds = load_dataset(name, symbolic=True)
        model = _paper_model(ds, which)
        for P in GPU_COUNTS:
            result.set(
                name,
                str(P),
                run_or_oom(
                    lambda: MGGCNTrainer(ds, model, machine=machine, num_gpus=P)
                ),
            )
        if verbose:
            cells = "  ".join(
                f"P{P}={result.format_cell(name, str(P), '{:.3f}s')}"
                for P in GPU_COUNTS
            )
            print(f"{name:10s} {cells}")
    return result


def sec66_vs_distgnn(verbose: bool = False) -> ExperimentResult:
    """MG-GCN (8 GPUs) vs DistGNN's best configuration (§6.6).

    Reports speedup ratios (paper: 40x Reddit, 12.6x Papers, 12.4x
    Products, 1.77x Proteins) and the Papers energy ratio (~143x).
    """
    table3 = table3_mggcn_a100()
    result = ExperimentResult("sec66")
    for name in ("reddit", "papers", "products", "proteins"):
        sockets, best = distgnn_best(name)
        ours = table3.get(name, "8")
        ratio = best / ours if ours else None
        result.set(name, "speedup", ratio)
        result.set(name, "distgnn_best_sockets", float(sockets))
        if verbose:
            shown = "OOM" if ratio is None else f"{ratio:.1f}x"
            print(f"{name:10s} MG-GCN(8 GPU) vs DistGNN({sockets} sockets): {shown}")
    papers_time = table3.get("papers", "8")
    if papers_time:
        sockets, best = distgnn_best("papers")
        result.set(
            "papers",
            "energy_ratio",
            energy_ratio(sockets, best, 8, papers_time, hidden_scale=208 / 256),
        )
        if verbose:
            print(
                f"papers energy ratio (CPU/GPU): "
                f"{result.get('papers', 'energy_ratio'):.0f}x (paper ~143x)"
            )
    return result


# ---------------------------------------------------------------------------
# Section 5.1: partitioning-strategy analysis
# ---------------------------------------------------------------------------


def sec51_partitioning_analysis(
    n: int = 1_000_000, d: int = 512, verbose: bool = False
) -> ExperimentResult:
    """1D vs 1.5D per-SpMM communication time on both machines (§5.1).

    The paper's conclusion: 1.5D is *slower* on DGX-1 (asymmetric mesh)
    and *faster* on DGX-A100 (NVSwitch), but needs twice the memory —
    hence MG-GCN implements only 1D.
    """
    result = ExperimentResult("sec51")
    for machine in (dgx1(), dgx_a100()):
        t1 = cagnet_1d_comm_time(machine, n, d)
        t15 = cagnet_15d_comm_time(machine, n, d)
        result.set(machine.name, "1d", t1)
        result.set(machine.name, "1.5d", t15)
        result.set(machine.name, "ratio_15d_over_1d", t15 / t1)
        if verbose:
            print(
                f"{machine.name:12s} 1D={format_seconds(t1)} "
                f"1.5D={format_seconds(t15)} ratio={t15 / t1:.2f}"
            )
    return result


# ---------------------------------------------------------------------------
# Accuracy parity (§6, "Model")
# ---------------------------------------------------------------------------


def accuracy_parity(
    scale: float = 0.02,
    epochs: int = 40,
    num_gpus: int = 8,
    seed: int = 5,
    verbose: bool = False,
) -> ExperimentResult:
    """MG-GCN reaches the same accuracy as the DGL baseline (§6).

    The paper validates correctness by matching DGL's training-accuracy
    curve on Reddit (2 layers, 16 hidden). We train the same config on
    a scaled learnable Reddit stand-in with all three implementations
    and compare test accuracies.
    """
    ds = load_dataset("reddit", scale=scale, learnable=True, seed=seed)
    model = GCNModelSpec.paper_model(2, ds.d0, ds.num_classes)
    result = ExperimentResult("accuracy")

    mg = MGGCNTrainer(
        ds, model, machine=dgx_a100(), num_gpus=num_gpus,
        config=TrainerConfig(seed=seed, first_layer_skip=False),
    )
    dgl = DGLLikeTrainer(ds, model, machine=dgx_a100(), seed=seed)
    for _ in range(epochs):
        mg.train_epoch()
        dgl.train_epoch()
    result.set("mggcn", "test_acc", mg.evaluate("test"))
    result.set("dgl", "test_acc", dgl.evaluate("test"))
    if verbose:
        print(
            f"test accuracy after {epochs} epochs: "
            f"MG-GCN {result.get('mggcn', 'test_acc'):.4f} vs "
            f"DGL {result.get('dgl', 'test_acc'):.4f}"
        )
    return result
