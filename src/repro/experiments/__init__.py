"""Experiment harness: one callable per paper table/figure."""

from repro.experiments.runner import (
    median_epoch_time,
    run_or_oom,
    ExperimentResult,
)
from repro.experiments import figures
from repro.experiments.report import generate_report, write_report

__all__ = [
    "median_epoch_time",
    "run_or_oom",
    "ExperimentResult",
    "figures",
    "generate_report",
    "write_report",
]
