"""Hierarchical collectives: intra-node rings + inter-node trees.

A flat :class:`~repro.comm.collectives.Communicator` over a multi-node
rank set pays the NIC-share cliff on every byte: the topology caps the
collective bandwidth at ``nic / gpus_per_node`` because all ranks of a
node squeeze through one NIC at once. The
:class:`HierarchicalCommunicator` decomposes each collective into
phases that keep the bulk of the traffic on the fast intra-node links
and send each payload over the NIC once per node pair, NCCL-tree style:

* **broadcast** — tree broadcast root → node leaders over the NICs,
  then a pipelined ring broadcast leader → members inside each node;
* **allreduce** — ring reduce to each node's leader, tree allreduce
  among the leaders, ring broadcast of the result back down;
* **reduce** — ring reduce to each node's representative, tree reduce
  of the partials into the root;
* **allgather** — intra-node gather, leader exchange of the node
  aggregates, intra-node broadcast of the remote rows.

Each phase is a rendezvous on a *sub*-communicator (per-node groups and
the node-leader group), so phase timing, fault injection, retries and
telemetry link classification all come from the existing machinery:
intra phases account their bytes as ``intra_node``, leader phases as
``inter_node`` — the split the multi-node benches report.

**Numerics.** The functional payload is computed once, in flat rank
order, by the same closure a flat communicator would run — hierarchical
collectives are therefore *bit-identical* to flat ones (the real-world
analogue — NCCL ring vs tree reassociation — is a timing model detail
this simulator deliberately does not reproduce). The closure is
attached to the inter-node phase, so captured plans (:mod:`repro.plan`)
replay hierarchical schedules with the correct data movement.

On a single-node rank set every operation falls back to the flat
implementation unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.comm.collectives import Communicator
from repro.device.stream import Event, Stream
from repro.device.tensor import DeviceTensor
from repro.errors import CommunicationError
from repro.parallel.groups import node_groups
from repro.resilience.policy import RetryPolicy


def _ceil_log2(n: int) -> int:
    """Tree depth of ``n`` leaves (>= 1 for n >= 2)."""
    depth = 0
    span = 1
    while span < n:
        span *= 2
        depth += 1
    return max(depth, 1)


class HierarchicalCommunicator(Communicator):
    """A :class:`Communicator` whose collectives are node-hierarchical.

    Drop-in compatible with the flat communicator (same constructor,
    same public methods, same functional results); only the simulated
    timing and the link-tier accounting differ, and only when the rank
    set actually spans nodes.
    """

    def __init__(
        self,
        ctx,
        ranks: Optional[Sequence[int]] = None,
        bw_derate: float = 1.0,
        collective_overhead: float = 12e-6,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        super().__init__(ctx, ranks, bw_derate, collective_overhead, timeout, retry)
        self.groups: List[List[int]] = node_groups(ctx.machine, self.ranks)
        #: False on single-node rank sets: every op delegates to flat.
        self.is_hierarchical = len(self.groups) > 1
        self._group_of: Dict[int, List[int]] = {
            r: g for g in self.groups for r in g
        }
        self._node_comms: Dict[Tuple[int, ...], Communicator] = {}
        self._leader_comms: Dict[Tuple[int, ...], Communicator] = {}
        self._hier_bcast_cache: Dict[Tuple[int, int], float] = {}
        if self.is_hierarchical:
            for g in self.groups:
                if len(g) > 1:
                    self._node_comms[tuple(g)] = Communicator(
                        ctx, g, bw_derate, collective_overhead, timeout, retry
                    )

    # -- sub-communicator plumbing ------------------------------------------

    def _leader_comm(self, root: Optional[int] = None) -> Communicator:
        """The inter-node communicator: one representative per node.

        With a ``root``, the root replaces its node's default leader so
        rooted ops (broadcast, reduce) need no extra intra-node hop.
        """
        leaders = tuple(
            root if (root is not None and root in g) else g[0]
            for g in self.groups
        )
        comm = self._leader_comms.get(leaders)
        if comm is None:
            comm = Communicator(
                self.ctx,
                list(leaders),
                self.bw_derate,
                self.collective_overhead,
                self.timeout,
                self.retry,
            )
            self._leader_comms[leaders] = comm
        return comm

    def _phase_deps(
        self,
        deps_by_rank: Mapping[int, Sequence[Event]],
        phase_ranks: Sequence[int],
        consumed: set,
    ) -> Dict[int, Sequence[Event]]:
        """Caller dependencies for the ranks entering their first phase."""
        deps = {}
        for r in phase_ranks:
            if r in deps_by_rank and r not in consumed:
                deps[r] = deps_by_rank[r]
                consumed.add(r)
        return deps

    # -- per-phase timing terms (mirror the flat formulas per tier) ---------

    def _bcast_terms(
        self, comm: Communicator, root: int, nbytes: int, tree: bool = False
    ) -> Tuple[float, float]:
        bw = comm.topology.broadcast_bandwidth(root, comm.ranks) * comm.bw_derate
        latency = max(
            comm.topology.p2p_latency(root, r) for r in comm.ranks if r != root
        )
        if tree:
            latency *= _ceil_log2(comm.size)
        return comm.collective_overhead + latency, nbytes / bw

    def _reduce_terms(
        self, comm: Communicator, nbytes: int, tree: bool = False
    ) -> Tuple[float, float]:
        bw = comm.topology.allreduce_bandwidth(comm.ranks) * comm.bw_derate
        volume = (comm.size - 1) / comm.size * nbytes
        hops = _ceil_log2(comm.size) if tree else comm.size - 1
        latency = hops * comm.topology.p2p_latency(comm.ranks[0], comm.ranks[1])
        return comm.collective_overhead + latency, volume / bw

    def _allreduce_terms(
        self, comm: Communicator, nbytes: int, tree: bool = False
    ) -> Tuple[float, float]:
        bw = comm.topology.allreduce_bandwidth(comm.ranks) * comm.bw_derate
        volume = 2.0 * (comm.size - 1) / comm.size * nbytes
        hops = 2 * (_ceil_log2(comm.size) if tree else comm.size - 1)
        latency = hops * comm.topology.p2p_latency(comm.ranks[0], comm.ranks[1])
        return comm.collective_overhead + latency, volume / bw

    def _gather_terms(
        self, comm: Communicator, nbytes: int
    ) -> Tuple[float, float]:
        bw = comm.topology.collective_bandwidth(comm.ranks) * comm.bw_derate
        volume = (comm.size - 1) / comm.size * nbytes
        latency = (comm.size - 1) * comm.topology.p2p_latency(
            comm.ranks[0], comm.ranks[1]
        )
        return latency, volume / bw

    # -- collectives --------------------------------------------------------

    def broadcast_duration(self, root: int, nbytes: int) -> float:
        if not self.is_hierarchical or self.size <= 1:
            return super().broadcast_duration(root, nbytes)
        key = (root, nbytes)
        cached = self._hier_bcast_cache.get(key)
        if cached is not None:
            return cached
        fixed, bw_time = self._bcast_terms(
            self._leader_comm(root), root, nbytes, tree=True
        )
        duration = fixed + bw_time
        intra = 0.0
        for g in self.groups:
            if len(g) == 1:
                continue
            rep = root if root in g else g[0]
            f, b = self._bcast_terms(self._node_comms[tuple(g)], rep, nbytes)
            intra = max(intra, f + b)
        duration += intra
        self._hier_bcast_cache[key] = duration
        return duration

    def allreduce_duration(self, nbytes: int) -> float:
        if not self.is_hierarchical or self.size <= 1:
            return super().allreduce_duration(nbytes)
        intra_reduce = 0.0
        intra_bcast = 0.0
        for g in self.groups:
            if len(g) == 1:
                continue
            sub = self._node_comms[tuple(g)]
            f, b = self._reduce_terms(sub, nbytes)
            intra_reduce = max(intra_reduce, f + b)
            f, b = self._bcast_terms(sub, g[0], nbytes)
            intra_bcast = max(intra_bcast, f + b)
        f, b = self._allreduce_terms(self._leader_comm(), nbytes, tree=True)
        return intra_reduce + f + b + intra_bcast

    def allgather_duration(self, total_nbytes: int) -> float:
        if not self.is_hierarchical or self.size <= 1:
            return super().allgather_duration(total_nbytes)
        # uniform-payload approximation: each node contributes its
        # member share of the gathered bytes.
        intra_gather = 0.0
        intra_bcast = 0.0
        for g in self.groups:
            if len(g) == 1:
                continue
            sub = self._node_comms[tuple(g)]
            node_bytes = total_nbytes * len(g) // self.size
            f, b = self._gather_terms(sub, node_bytes)
            intra_gather = max(intra_gather, f + b)
            f, b = self._bcast_terms(sub, g[0], total_nbytes - node_bytes)
            intra_bcast = max(intra_bcast, f + b)
        f, b = self._gather_terms(self._leader_comm(), total_nbytes)
        return intra_gather + f + b + intra_bcast

    def broadcast(
        self,
        root: int,
        src: DeviceTensor,
        dsts: Mapping[int, DeviceTensor],
        streams: Optional[Mapping[int, Stream]] = None,
        deps_by_rank: Optional[Mapping[int, Sequence[Event]]] = None,
        stage: Optional[int] = None,
        name: str = "broadcast",
        payload_nbytes: Optional[int] = None,
        copy_fn: Optional[Callable[[], None]] = None,
    ) -> Dict[int, Event]:
        if not self.is_hierarchical:
            return super().broadcast(
                root, src, dsts, streams, deps_by_rank, stage, name,
                payload_nbytes=payload_nbytes, copy_fn=copy_fn,
            )
        if root not in self.ranks:
            raise CommunicationError(f"broadcast root {root} not in {self.ranks}")
        shapes: Dict[int, Optional[Tuple[int, ...]]] = {root: src.shape}
        for rank in self.ranks:
            if rank == root:
                continue
            dst = dsts.get(rank)
            shapes[rank] = dst.shape if dst is not None else None
        self._check_rendezvous(name, shapes)

        def full_copy() -> None:
            src_data = src.data
            if src_data is None:
                return
            for rank, dst in dsts.items():
                if rank != root and dst.data is not None:
                    np.copyto(dst.data, src_data)

        compute = copy_fn if copy_fn is not None else full_copy
        compute()
        # a partial (cached) broadcast moves only its payload bytes in
        # *every* phase — the NIC hop and the intra-node rings forward
        # the same shrunken packet, and each tier's accounting sees it.
        nbytes = src.nbytes if payload_nbytes is None else int(payload_nbytes)
        deps_by_rank = deps_by_rank or {}
        consumed: set = set()
        events: Dict[int, Event] = {}
        # inter-node: tree broadcast root -> node leaders over the NICs
        leader_comm = self._leader_comm(root)
        fixed, bw_time = self._bcast_terms(leader_comm, root, nbytes, tree=True)
        events.update(
            leader_comm._rendezvous(
                leader_comm._streams(streams),
                fixed,
                bw_time,
                f"{name}/inter",
                self._phase_deps(deps_by_rank, leader_comm.ranks, consumed),
                stage,
                nbytes,
                compute,
            )
        )
        # intra-node: pipelined ring broadcast leader -> members
        for g in self.groups:
            if len(g) == 1:
                continue
            rep = root if root in g else g[0]
            sub = self._node_comms[tuple(g)]
            fixed, bw_time = self._bcast_terms(sub, rep, nbytes)
            events.update(
                sub._rendezvous(
                    sub._streams(streams),
                    fixed,
                    bw_time,
                    f"{name}/intra",
                    self._phase_deps(deps_by_rank, g, consumed),
                    stage,
                    nbytes,
                    None,
                )
            )
        return events

    def allreduce(
        self,
        tensors: Mapping[int, DeviceTensor],
        op: str = "sum",
        streams: Optional[Mapping[int, Stream]] = None,
        deps_by_rank: Optional[Mapping[int, Sequence[Event]]] = None,
        name: str = "allreduce",
    ) -> Dict[int, Event]:
        if not self.is_hierarchical:
            return super().allreduce(tensors, op, streams, deps_by_rank, name)
        if op not in ("sum", "mean"):
            raise CommunicationError(f"unsupported allreduce op {op!r}")
        self._check_uniform(tensors, name)

        def compute() -> None:
            arrays = [
                tensors[r].data for r in self.ranks if tensors[r].data is not None
            ]
            if not arrays:
                return
            total = arrays[0].copy()
            for a in arrays[1:]:
                total += a
            if op == "mean":
                total /= self.size
            for r in self.ranks:
                if tensors[r].data is not None:
                    np.copyto(tensors[r].data, total)

        compute()
        ref = tensors[self.ranks[0]]
        nbytes = ref.nbytes
        count = ref.size
        deps_by_rank = deps_by_rank or {}
        consumed: set = set()
        events: Dict[int, Event] = {}
        # phase 1: ring reduce to each node's leader
        for g in self.groups:
            if len(g) == 1:
                continue
            sub = self._node_comms[tuple(g)]
            fixed, bw_time = self._reduce_terms(sub, nbytes)
            events.update(
                sub._rendezvous(
                    sub._streams(streams),
                    fixed,
                    bw_time,
                    f"{name}/intra_reduce",
                    self._phase_deps(deps_by_rank, g, consumed),
                    None,
                    nbytes,
                    None,
                    flops=(sub.size - 1) / sub.size * count,
                )
            )
        # phase 2: tree allreduce among the node leaders (NIC tier)
        leader_comm = self._leader_comm()
        n_leaders = leader_comm.size
        leader_flops = (n_leaders - 1) / n_leaders * count
        if op == "mean":
            leader_flops += count / n_leaders
        fixed, bw_time = self._allreduce_terms(leader_comm, nbytes, tree=True)
        events.update(
            leader_comm._rendezvous(
                leader_comm._streams(streams),
                fixed,
                bw_time,
                f"{name}/inter",
                self._phase_deps(deps_by_rank, leader_comm.ranks, consumed),
                None,
                nbytes,
                compute,
                flops=leader_flops,
            )
        )
        # phase 3: ring broadcast of the reduced buffer back down
        for g in self.groups:
            if len(g) == 1:
                continue
            sub = self._node_comms[tuple(g)]
            fixed, bw_time = self._bcast_terms(sub, g[0], nbytes)
            events.update(
                sub._rendezvous(
                    sub._streams(streams),
                    fixed,
                    bw_time,
                    f"{name}/intra_bcast",
                    {},
                    None,
                    nbytes,
                    None,
                )
            )
        return events

    def reduce(
        self,
        root: int,
        tensors: Mapping[int, DeviceTensor],
        streams: Optional[Mapping[int, Stream]] = None,
        deps_by_rank: Optional[Mapping[int, Sequence[Event]]] = None,
        name: str = "reduce",
    ) -> Dict[int, Event]:
        if not self.is_hierarchical:
            return super().reduce(root, tensors, streams, deps_by_rank, name)
        if root not in self.ranks:
            raise CommunicationError(f"reduce root {root} not in {self.ranks}")
        self._check_uniform(tensors, name)
        root_tensor = tensors[root]

        def compute() -> None:
            if root_tensor.data is None:
                return
            for r in self.ranks:
                if r == root:
                    continue
                src = tensors[r]
                if src.data is not None:
                    root_tensor.data += src.data

        compute()
        nbytes = root_tensor.nbytes
        count = root_tensor.size
        deps_by_rank = deps_by_rank or {}
        consumed: set = set()
        events: Dict[int, Event] = {}
        # phase 1: ring reduce to each node's representative
        for g in self.groups:
            if len(g) == 1:
                continue
            rep = root if root in g else g[0]
            sub = self._node_comms[tuple(g)]
            fixed, bw_time = self._reduce_terms(sub, nbytes)
            events.update(
                sub._rendezvous(
                    sub._streams(streams),
                    fixed,
                    bw_time,
                    f"{name}/intra",
                    self._phase_deps(deps_by_rank, g, consumed),
                    None,
                    nbytes,
                    None,
                    flops=(sub.size - 1) / sub.size * count,
                )
            )
        # phase 2: tree reduce of the node partials into the root
        leader_comm = self._leader_comm(root)
        n_leaders = leader_comm.size
        fixed, bw_time = self._reduce_terms(leader_comm, nbytes, tree=True)
        events.update(
            leader_comm._rendezvous(
                leader_comm._streams(streams),
                fixed,
                bw_time,
                f"{name}/inter",
                self._phase_deps(deps_by_rank, leader_comm.ranks, consumed),
                None,
                nbytes,
                compute,
                flops=(n_leaders - 1) / n_leaders * count,
            )
        )
        return events

    def allgather(
        self,
        srcs: Mapping[int, DeviceTensor],
        dsts: Mapping[int, DeviceTensor],
        row_offsets: Optional[Mapping[int, int]] = None,
        streams: Optional[Mapping[int, Stream]] = None,
        deps_by_rank: Optional[Mapping[int, Sequence[Event]]] = None,
        name: str = "allgather",
    ) -> Dict[int, Event]:
        if not self.is_hierarchical:
            return super().allgather(
                srcs, dsts, row_offsets, streams, deps_by_rank, name
            )
        self._check_rendezvous(
            name,
            {
                r: ((srcs[r].cols,) if r in srcs and r in dsts else None)
                for r in self.ranks
            },
        )
        total_rows = sum(srcs[r].rows for r in self.ranks)
        offsets: Dict[int, int] = {}
        if row_offsets is None:
            cursor = 0
            for r in self.ranks:
                offsets[r] = cursor
                cursor += srcs[r].rows
        else:
            offsets = dict(row_offsets)
        for r in self.ranks:
            dst = dsts[r]
            if dst.rows != total_rows:
                raise CommunicationError(
                    f"allgather: rank {r} dst has {dst.rows} rows, need {total_rows}"
                )

        def compute() -> None:
            for r in self.ranks:
                dst = dsts[r]
                if dst.data is None:
                    continue
                for s in self.ranks:
                    src = srcs[s]
                    if src.data is not None:
                        dst.data[offsets[s] : offsets[s] + src.rows] = src.data

        compute()
        total_bytes = sum(srcs[r].nbytes for r in self.ranks)
        node_bytes = {
            tuple(g): sum(srcs[r].nbytes for r in g) for g in self.groups
        }
        deps_by_rank = deps_by_rank or {}
        consumed: set = set()
        events: Dict[int, Event] = {}
        # phase 1: gather each node's rows on every member (ring allgather)
        for g in self.groups:
            if len(g) == 1:
                continue
            sub = self._node_comms[tuple(g)]
            fixed, bw_time = self._gather_terms(sub, node_bytes[tuple(g)])
            events.update(
                sub._rendezvous(
                    sub._streams(streams),
                    fixed,
                    bw_time,
                    f"{name}/intra_gather",
                    self._phase_deps(deps_by_rank, g, consumed),
                    None,
                    node_bytes[tuple(g)],
                    None,
                )
            )
        # phase 2: node leaders exchange the per-node aggregates (NIC tier)
        leader_comm = self._leader_comm()
        fixed, bw_time = self._gather_terms(leader_comm, total_bytes)
        events.update(
            leader_comm._rendezvous(
                leader_comm._streams(streams),
                fixed,
                bw_time,
                f"{name}/inter",
                self._phase_deps(deps_by_rank, leader_comm.ranks, consumed),
                None,
                total_bytes,
                compute,
            )
        )
        # phase 3: broadcast the remote rows inside each node
        for g in self.groups:
            if len(g) == 1:
                continue
            remote = total_bytes - node_bytes[tuple(g)]
            if remote <= 0:
                continue
            sub = self._node_comms[tuple(g)]
            fixed, bw_time = self._bcast_terms(sub, g[0], remote)
            events.update(
                sub._rendezvous(
                    sub._streams(streams),
                    fixed,
                    bw_time,
                    f"{name}/intra_bcast",
                    {},
                    None,
                    remote,
                    None,
                )
            )
        return events
