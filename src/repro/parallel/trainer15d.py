"""The 1.5D trainer for multi-node clusters.

:class:`Parallel15DTrainer` is the CAGNET 1.5D algorithm
(:class:`~repro.baselines.cagnet15d.CAGNET15DTrainer`) promoted from an
analytic baseline to a first-class multi-node trainer:

* MG-GCN-tuned kernel costs by default (the baseline deliberately
  models CAGNET's less-optimised kernels);
* every communicator whose rank set spans nodes is replaced by a
  :class:`~repro.parallel.hierarchy.HierarchicalCommunicator`, so the
  row-group broadcasts and the cross-replica reductions pay the NIC
  once per node instead of once per rank.

The grid mapping ``g = l * R + i`` makes each replica layer a
*contiguous* rank range: with ``replication == num_nodes`` each layer's
broadcast group lives on one node (pure NVLink) and only the partial
reduction crosses the NICs — the natural node-aligned 1.5D placement
Demirci et al. describe for distributed-memory GNN training.

Numerics are unchanged (hierarchical collectives are bit-identical to
flat ones), so the trainer matches :class:`~repro.nn.ReferenceGCN`
exactly like the baseline does.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.baselines.cagnet15d import CAGNET15DTrainer
from repro.comm.collectives import Communicator
from repro.datasets.loader import Dataset, SymbolicDataset
from repro.hardware.spec import MachineSpec
from repro.kernels.cost import KernelCosts
from repro.nn.model import GCNModelSpec
from repro.parallel.groups import spans_nodes
from repro.parallel.hierarchy import HierarchicalCommunicator


def _hierarchical(ctx, comm: Communicator) -> Communicator:
    """A hierarchical clone of ``comm`` when its ranks span nodes."""
    if not spans_nodes(ctx.machine, comm.ranks):
        return comm
    return HierarchicalCommunicator(
        ctx,
        comm.ranks,
        comm.bw_derate,
        comm.collective_overhead,
        comm.timeout,
        comm.retry,
    )


class Parallel15DTrainer(CAGNET15DTrainer):
    """CAGNET 1.5D with MG-GCN kernels and hierarchical collectives."""

    def __init__(
        self,
        dataset: Union[Dataset, SymbolicDataset],
        model: GCNModelSpec,
        machine: Optional[MachineSpec] = None,
        num_gpus: Optional[int] = None,
        replication: int = 2,
        lr: float = 1e-2,
        seed: int = 0,
        permute: bool = False,
        kernel_costs: Optional[KernelCosts] = None,
        hierarchical: bool = True,
    ):
        super().__init__(
            dataset,
            model,
            machine=machine,
            num_gpus=num_gpus,
            replication=replication,
            lr=lr,
            seed=seed,
            permute=permute,
            kernel_costs=kernel_costs or KernelCosts(),
        )
        self.hierarchical = hierarchical
        if hierarchical:
            self.layer_comms = [
                _hierarchical(self.ctx, c) for c in self.layer_comms
            ]
            self.replica_comms = [
                _hierarchical(self.ctx, c) for c in self.replica_comms
            ]
            self.world_comm = _hierarchical(self.ctx, self.world_comm)
