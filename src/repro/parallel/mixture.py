"""The mixture-of-parallelism trainer.

:class:`MixtureTrainer` is :class:`~repro.core.trainer.MGGCNTrainer`
with the per-layer SpMM dispatched through the planner's choices
(:class:`~repro.parallel.planner.ParallelismPlan`): each layer runs its
distributed SpMM as ``1d`` (flat staged broadcast), ``1d_hier`` (staged
broadcast over hierarchical collectives) or ``1d_allgather``
(replicated-operand single wide SpMM) — the MixGCN idea of mixing
parallelism modes *within* one model instead of picking one globally.

Everything outside the SpMM seam is inherited unchanged — forward/
backward order optimisation, capture & replay (the plan signature
includes the scheme vector, so changing plans recaptures), elastic
recovery, telemetry. Numerics track the base trainer: hierarchical
collectives are bit-identical to flat ones, so the staged schemes
(``1d``, ``1d_hier``) reproduce its weights bit for bit. The allgather
scheme computes the same sum ``C^i = sum_j A^{ij} S^j`` as one wide
SpMM, which rounds its float32 accumulator at different points than the
staged P-step schedule — equal at reference tolerance, not in the last
ulp.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Union

from repro.comm.collectives import Communicator
from repro.core.spmm_mg import distributed_spmm
from repro.core.trainer import MGGCNTrainer, TrainerConfig
from repro.core.order import broadcast_width
from repro.datasets.loader import Dataset, SymbolicDataset
from repro.device.stream import Event
from repro.device.tensor import DeviceTensor
from repro.errors import ConfigurationError
from repro.hardware.machines import dgx1
from repro.hardware.spec import MachineSpec
from repro.nn.model import GCNModelSpec
from repro.parallel.hierarchy import HierarchicalCommunicator
from repro.parallel.planner import ParallelismPlan, ParallelismPlanner
from repro.parallel.strategies import allgather_spmm, concat_tile_row


class MixtureTrainer(MGGCNTrainer):
    """MG-GCN trainer with planner-chosen parallelism per layer."""

    def __init__(
        self,
        dataset: Union[Dataset, SymbolicDataset],
        model: GCNModelSpec,
        machine: Optional[MachineSpec] = None,
        num_gpus: Optional[int] = None,
        config: Optional[TrainerConfig] = None,
        plan: Optional[ParallelismPlan] = None,
    ):
        machine = machine or dgx1()
        base = config or TrainerConfig()
        if plan is None:
            plan = ParallelismPlanner(
                dataset,
                model,
                machine,
                num_gpus=num_gpus,
                kernel_costs=base.kernel_costs,
                overlap=base.overlap,
                order_optimization=base.order_optimization,
                first_layer_skip=base.first_layer_skip,
            ).plan()
        if len(plan.choices) != model.num_layers:
            raise ConfigurationError(
                f"plan covers {len(plan.choices)} layers, model has "
                f"{model.num_layers}"
            )
        self.plan = plan
        # weight gradients sync the way the plan says; the flag also
        # folds into the base trainer's plan signature.
        config = dataclasses.replace(
            base,
            hierarchical_collectives=(plan.weight_sync == "hierarchical"),
        )
        super().__init__(
            dataset, model, machine=machine, num_gpus=num_gpus, config=config
        )
        if plan.num_gpus != self.num_gpus:
            raise ConfigurationError(
                f"plan was made for {plan.num_gpus} GPUs, trainer has "
                f"{self.num_gpus}"
            )
        # both communicator flavours, sharing the base one to keep the
        # collective sequence-number space consistent with weight sync.
        if isinstance(self.comm, HierarchicalCommunicator):
            self.hier_comm: Communicator = self.comm
            self.flat_comm: Communicator = Communicator(
                self.ctx,
                bw_derate=self.comm.bw_derate,
                timeout=self.comm.timeout,
            )
        else:
            self.flat_comm = self.comm
            self.hier_comm = HierarchicalCommunicator(
                self.ctx,
                bw_derate=self.comm.bw_derate,
                timeout=self.comm.timeout,
            )
        self._wide_fwd: Optional[List[object]] = None
        self._wide_bwd: Optional[List[object]] = None
        self._gather_buffers: Optional[List[DeviceTensor]] = None
        self._wide_allocs: List[object] = []
        if self.num_gpus > 1 and any(
            s == "1d_allgather" for s in plan.schemes
        ):
            self._init_allgather_state()

    # -- allgather-scheme state ----------------------------------------------

    def _allgather_width(self) -> int:
        """Widest operand any allgather-scheme SpMM gathers."""
        widths = []
        for choice in self.plan.choices:
            if choice.scheme != "1d_allgather":
                continue
            widths.append(
                broadcast_width(
                    choice.d_in,
                    choice.d_out,
                    self.config.order_optimization,
                )
            )
            if choice.layer > 0 or not self.config.first_layer_skip:
                widths.append(choice.d_out)  # backward gradient rows
        return max(widths)

    def _init_allgather_state(self) -> None:
        P = self.num_gpus
        n = sum(self.graph.local_rows(i) for i in range(P))
        width = self._allgather_width()
        self._gather_buffers = [
            self.ctx.device(i).empty((n, width), name=f"AG{i}", tag="allgather")
            for i in range(P)
        ]
        self._wide_fwd = [
            concat_tile_row(self.graph.forward_tiles[i]) for i in range(P)
        ]
        self._wide_bwd = [
            concat_tile_row(self.graph.backward_tiles[i]) for i in range(P)
        ]
        # the hstacked tile rows live on-device next to the per-stage
        # tiles; account their bytes like the partitioner does.
        for i in range(P):
            pool = self.ctx.device(i).pool
            for wide in (self._wide_fwd[i], self._wide_bwd[i]):
                self._wide_allocs.append(
                    pool.allocate(int(wide.nbytes), tag="adjacency-wide")
                )

    # -- the SpMM seam -------------------------------------------------------

    def _run_spmm(
        self,
        layer: int,
        direction: str,
        tiles,
        sources: Sequence[DeviceTensor],
        outputs: Sequence[DeviceTensor],
        deps_by_rank: Optional[Dict[int, List[Event]]] = None,
        label: str = "spmm",
    ) -> Dict[int, List[Event]]:
        scheme = self.plan.scheme(layer) if self.num_gpus > 1 else "1d"
        if scheme == "1d_allgather":
            wide = self._wide_fwd if direction == "fwd" else self._wide_bwd
            return allgather_spmm(
                self.ctx,
                self.hier_comm,
                self.cost_models,
                wide,
                sources,
                outputs,
                self._gather_buffers,
                deps_by_rank=deps_by_rank,
                label=label,
            )
        comm = self.hier_comm if scheme == "1d_hier" else self.flat_comm
        return distributed_spmm(
            self.ctx,
            comm,
            self.cost_models,
            tiles,
            sources,
            outputs,
            self.buffers,
            overlap=self.config.overlap,
            overlap_bw_fraction=self._overlap_bw_fraction,
            deps_by_rank=deps_by_rank,
            label=label,
            cache=self._spmm_cache(direction),
        )

    def _plan_signature(self):
        return super()._plan_signature() + (tuple(self.plan.schemes),)
