"""The 2D (SUMMA) trainer for multi-node clusters.

:class:`Parallel2DTrainer` promotes the CAGNET 2D baseline
(:class:`~repro.baselines.cagnet2d.CAGNET2DTrainer`) the same way the
1.5D trainer is promoted: MG-GCN-tuned kernel costs by default, and
hierarchical collectives on every communicator that spans nodes. In the
``r x r`` SUMMA grid (rank ``g = i * r + j``) the row groups are
contiguous rank ranges — node-aligned whenever ``r`` divides the node
size — while the column groups stride across nodes and benefit most
from the tree phase over the NICs.

Requires a square GPU count (inherited from the baseline); numerics
match :class:`~repro.nn.ReferenceGCN` exactly like the baseline does.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.baselines.cagnet2d import CAGNET2DTrainer
from repro.datasets.loader import Dataset, SymbolicDataset
from repro.hardware.spec import MachineSpec
from repro.kernels.cost import KernelCosts
from repro.nn.model import GCNModelSpec
from repro.parallel.trainer15d import _hierarchical


class Parallel2DTrainer(CAGNET2DTrainer):
    """CAGNET 2D (SUMMA) with MG-GCN kernels and hierarchical collectives."""

    def __init__(
        self,
        dataset: Union[Dataset, SymbolicDataset],
        model: GCNModelSpec,
        machine: Optional[MachineSpec] = None,
        num_gpus: Optional[int] = None,
        lr: float = 1e-2,
        seed: int = 0,
        permute: bool = False,
        kernel_costs: Optional[KernelCosts] = None,
        hierarchical: bool = True,
    ):
        super().__init__(
            dataset,
            model,
            machine=machine,
            num_gpus=num_gpus,
            lr=lr,
            seed=seed,
            permute=permute,
            kernel_costs=kernel_costs or KernelCosts(),
        )
        self.hierarchical = hierarchical
        if hierarchical:
            self.row_comms = [
                _hierarchical(self.ctx, c) for c in self.row_comms
            ]
            self.col_comms = [
                _hierarchical(self.ctx, c) for c in self.col_comms
            ]
            self.world_comm = _hierarchical(self.ctx, self.world_comm)
