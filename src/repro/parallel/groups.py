"""Topology-aware rank grouping for hierarchical collectives.

A multi-node cluster (:func:`repro.hardware.machines.multi_node_cluster`)
joins identical nodes by NICs that are an order of magnitude slower than
the intra-node links. Every hierarchical algorithm in this package
starts from the same decomposition of a communicator's rank set:

* :func:`node_groups` — the ranks split by the node that hosts them
  (order-preserving within each group);
* one *leader* per group (its first rank) that represents the node on
  the inter-node tier.

The helpers are deliberately free functions over ``MachineSpec`` so the
planner can reason about groupings without building a ``SimContext``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.hardware.spec import MachineSpec


def node_groups(machine: MachineSpec, ranks: Sequence[int]) -> List[List[int]]:
    """Split ``ranks`` into per-node groups, ordered by first appearance.

    Within a group the caller's rank order is preserved, so flat-order
    reductions over a group reproduce the arithmetic of the flat
    communicator restricted to that node.
    """
    by_node: Dict[int, List[int]] = {}
    for r in ranks:
        by_node.setdefault(machine.node_of(r), []).append(r)
    return list(by_node.values())


def group_leaders(groups: Sequence[Sequence[int]]) -> List[int]:
    """The representative rank of each group (its first member)."""
    return [g[0] for g in groups]


def spans_nodes(machine: MachineSpec, ranks: Sequence[int]) -> bool:
    """True when ``ranks`` live on more than one node."""
    if machine.num_nodes <= 1:
        return False
    return len({machine.node_of(r) for r in ranks}) > 1


def link_class(machine: MachineSpec, ranks: Sequence[int]) -> str:
    """Telemetry link tier for a rank set: ``intra_node`` or ``inter_node``."""
    return "inter_node" if spans_nodes(machine, ranks) else "intra_node"
