"""Per-layer SpMM parallelisation schemes for the mixture trainer.

The planner (:mod:`repro.parallel.planner`) chooses one scheme per GCN
layer; :class:`~repro.parallel.mixture.MixtureTrainer` dispatches each
layer's distributed SpMM through this module:

* ``1d`` — the paper's multi-stage broadcast SpMM over the flat
  communicator (:func:`repro.core.spmm_mg.distributed_spmm`);
* ``1d_hier`` — the same staged schedule, with every broadcast routed
  through the hierarchical communicator (intra-node ring + inter-node
  tree), which is what large layers want on multi-node clusters;
* ``1d_allgather`` — replicate the dense operand: one hierarchical
  allgather assembles all ``n`` operand rows on every rank, then a
  single wide SpMM (the rank's row of tiles hstacked) produces the
  local output. Trades ``n x d`` memory and a colder SpMM working set
  for ``P`` fewer collective launches — the right call for narrow
  layers on latency-dominated clusters (MixGCN's "feature-replicated"
  point in the design space).

Scheme names are the vocabulary shared by the planner, the CLI
(``repro parallel plan``) and ``BENCH_multinode.json``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.comm.collectives import Communicator
from repro.device.engine import SimContext
from repro.device.stream import Event
from repro.device.tensor import DeviceTensor
from repro.errors import ConfigurationError
from repro.kernels.cost import CostModel
from repro.kernels.ops import spmm
from repro.sparse.csr import CSRMatrix
from repro.sparse.symbolic import SymbolicCSR

#: per-layer schemes the mixture trainer can dispatch.
LAYER_SCHEMES = ("1d", "1d_hier", "1d_allgather")
#: whole-model grid schemes (dedicated trainers, not per-layer).
FIXED_SCHEMES = ("15d", "2d")


def concat_tile_row(row_tiles: Sequence[object]):
    """One rank's row of tiles ``[A^{i0} | A^{i1} | ...]`` as one matrix.

    Functional tiles hstack into a real :class:`CSRMatrix`; symbolic
    tiles combine into one :class:`SymbolicCSR` with summed nnz.
    """
    if not row_tiles:
        raise ConfigurationError("concat_tile_row needs at least one tile")
    if isinstance(row_tiles[0], CSRMatrix):
        return CSRMatrix.hstack(list(row_tiles))
    rows = row_tiles[0].shape[0]
    cols = sum(t.shape[1] for t in row_tiles)
    nnz = sum(t.nnz for t in row_tiles)
    return SymbolicCSR((rows, cols), nnz)


def allgather_spmm(
    ctx: SimContext,
    comm: Communicator,
    cost_models: Sequence[CostModel],
    wide_tiles: Sequence[object],
    sources: Sequence[DeviceTensor],
    outputs: Sequence[DeviceTensor],
    gather_buffers: Sequence[DeviceTensor],
    deps_by_rank: Optional[Dict[int, Sequence[Event]]] = None,
    label: str = "spmm",
) -> Dict[int, List[Event]]:
    """Replicated-operand SpMM: allgather all rows, one wide multiply.

    ``wide_tiles[i]`` is rank ``i``'s hstacked tile row (``rows_i x n``);
    ``gather_buffers[i]`` holds at least ``n x d`` elements. The single
    SpMM reads the full ``n``-row operand, so its cost model sees the
    colder working set (``dense_rows = n``) — the compute-side price of
    skipping the staged broadcasts.
    """
    P = ctx.num_gpus
    if not (len(wide_tiles) == len(sources) == len(outputs) == P):
        raise ConfigurationError(
            f"allgather_spmm: expected {P} rank entries, got "
            f"{len(wide_tiles)}/{len(sources)}/{len(outputs)}"
        )
    d = sources[0].cols
    total_rows = sum(s.rows for s in sources)
    gathered = [gather_buffers[i].view2d(total_rows, d) for i in range(P)]
    ag_events = comm.allgather(
        {i: sources[i] for i in range(P)},
        {i: gathered[i] for i in range(P)},
        deps_by_rank=deps_by_rank,
        name=f"{label}/allgather",
    )
    events: Dict[int, List[Event]] = {}
    for i in range(P):
        ev = spmm(
            ctx.engine,
            cost_models[i],
            ctx.device(i).compute_stream,
            wide_tiles[i],
            gathered[i],
            outputs[i],
            accumulate=False,
            deps=[ag_events[i]],
            name=f"{label}/wide",
        )
        events[i] = [ev]
    return events
