"""Multi-node parallelism: hierarchical collectives + mixture planning.

The subsystem has three tiers:

* **collectives** — :class:`HierarchicalCommunicator` decomposes every
  collective into intra-node ring phases and an inter-node tree phase,
  paying each NIC once per node instead of once per rank (bit-identical
  payloads to the flat communicator);
* **trainers** — :class:`Parallel15DTrainer` / :class:`Parallel2DTrainer`
  promote the CAGNET grid baselines to multi-node first-class trainers,
  and :class:`MixtureTrainer` dispatches each GCN layer to its own
  scheme;
* **planning** — :class:`ParallelismPlanner` prices every scheme with
  the simulator's own cost/communication models and emits an
  explainable :class:`ParallelismPlan` (the ``repro parallel plan``
  CLI prints it).
"""

from repro.parallel.groups import (
    group_leaders,
    link_class,
    node_groups,
    spans_nodes,
)
from repro.parallel.hierarchy import HierarchicalCommunicator
from repro.parallel.mixture import MixtureTrainer
from repro.parallel.planner import (
    LayerChoice,
    ParallelismPlan,
    ParallelismPlanner,
    SchemeCost,
)
from repro.parallel.strategies import (
    FIXED_SCHEMES,
    LAYER_SCHEMES,
    allgather_spmm,
    concat_tile_row,
)
from repro.parallel.trainer15d import Parallel15DTrainer
from repro.parallel.trainer2d import Parallel2DTrainer

__all__ = [
    "FIXED_SCHEMES",
    "LAYER_SCHEMES",
    "HierarchicalCommunicator",
    "LayerChoice",
    "MixtureTrainer",
    "Parallel15DTrainer",
    "Parallel2DTrainer",
    "ParallelismPlan",
    "ParallelismPlanner",
    "SchemeCost",
    "allgather_spmm",
    "concat_tile_row",
    "group_leaders",
    "link_class",
    "node_groups",
    "spans_nodes",
]
