"""The cost-model-driven parallelism planner (MixGCN-style mixture).

Given a dataset, a model and a cluster, :class:`ParallelismPlanner`
estimates — per GCN layer — the communication and compute cost of each
per-layer scheme (:data:`~repro.parallel.strategies.LAYER_SCHEMES`) and
picks the cheapest feasible one; it also estimates whole-model 1.5D and
2D grids so the plan can say whether a fixed grid would beat the
mixture. Every estimate reuses the simulator's own models:

* communication via real :class:`~repro.comm.collectives.Communicator`
  / :class:`~repro.parallel.hierarchy.HierarchicalCommunicator`
  instances over a throwaway :class:`SimContext` (``broadcast_duration``
  & friends), so predictions and measured epochs share one model;
* compute via :class:`~repro.kernels.cost.CostModel` (the MG-GCN-tuned
  roofline), including the colder ``dense_rows = n`` working set the
  replicated-operand scheme pays;
* memory via the same CSR/tensor byte formulas the device pools
  enforce — a scheme whose extra footprint would blow the per-GPU
  memory budget is excluded with an explicit reason, never chosen.

The output :class:`ParallelismPlan` is explainable: per-layer choices
carry every candidate's numbers and a one-line reason, and
:meth:`ParallelismPlan.explain` renders the table the
``repro parallel plan`` CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.policy import CachePolicy
from repro.comm.collectives import Communicator
from repro.config import FLOAT_SIZE, INDEX_SIZE, OFFSET_SIZE
from repro.device.engine import SimContext
from repro.errors import ConfigurationError
from repro.hardware.spec import MachineSpec
from repro.kernels.cost import CostModel, KernelCosts
from repro.nn.model import GCNModelSpec
from repro.parallel.groups import spans_nodes
from repro.parallel.hierarchy import HierarchicalCommunicator
from repro.parallel.strategies import LAYER_SCHEMES


def _csr_bytes(rows: int, nnz: int) -> int:
    """Device bytes of a CSR block (indptr + indices + vals)."""
    return (rows + 1) * OFFSET_SIZE + nnz * (INDEX_SIZE + FLOAT_SIZE)


@dataclass(frozen=True)
class SchemeCost:
    """One candidate scheme's estimate for one layer."""

    scheme: str
    comm_time: float
    compute_time: float
    extra_memory: int
    feasible: bool
    note: str = ""

    @property
    def total(self) -> float:
        return self.comm_time + self.compute_time


@dataclass(frozen=True)
class LayerChoice:
    """The planner's decision for one layer, with its alternatives."""

    layer: int
    d_in: int
    d_out: int
    scheme: str
    reason: str
    candidates: Tuple[SchemeCost, ...]

    def candidate(self, scheme: str) -> SchemeCost:
        for c in self.candidates:
            if c.scheme == scheme:
                return c
        raise KeyError(scheme)


@dataclass
class ParallelismPlan:
    """Per-layer parallelism choices plus whole-model alternatives."""

    dataset_name: str
    machine_name: str
    num_gpus: int
    num_nodes: int
    choices: List[LayerChoice]
    #: "flat" | "hierarchical" — how weight gradients are allreduced.
    weight_sync: str
    #: predicted epoch time of the per-layer mixture.
    mixture_estimate: float
    #: predicted epoch times of uniform schemes ("1d", "1d_hier") and
    #: fixed grids ("15d", "2d"); absent keys were infeasible.
    fixed_estimates: Dict[str, float] = field(default_factory=dict)
    #: why an absent fixed scheme was excluded.
    exclusions: Dict[str, str] = field(default_factory=dict)
    #: extra per-GPU bytes the mixture needs beyond the 1D baseline.
    extra_memory_per_gpu: int = 0

    def scheme(self, layer: int) -> str:
        return self.choices[layer].scheme

    @property
    def schemes(self) -> List[str]:
        return [c.scheme for c in self.choices]

    @property
    def best_overall(self) -> str:
        """"mixture" or the name of a strictly cheaper fixed scheme."""
        best = "mixture"
        best_t = self.mixture_estimate
        for name, t in self.fixed_estimates.items():
            if t < best_t:
                best, best_t = name, t
        return best

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset_name,
            "machine": self.machine_name,
            "num_gpus": self.num_gpus,
            "num_nodes": self.num_nodes,
            "weight_sync": self.weight_sync,
            "mixture_estimate": self.mixture_estimate,
            "fixed_estimates": dict(self.fixed_estimates),
            "exclusions": dict(self.exclusions),
            "extra_memory_per_gpu": self.extra_memory_per_gpu,
            "best_overall": self.best_overall,
            "layers": [
                {
                    "layer": c.layer,
                    "dims": [c.d_in, c.d_out],
                    "scheme": c.scheme,
                    "reason": c.reason,
                    "candidates": {
                        cand.scheme: {
                            "comm_time": cand.comm_time,
                            "compute_time": cand.compute_time,
                            "extra_memory": cand.extra_memory,
                            "feasible": cand.feasible,
                            "note": cand.note,
                        }
                        for cand in c.candidates
                    },
                }
                for c in self.choices
            ],
        }

    def explain(self) -> str:
        """The human-readable plan table (the CLI's output)."""
        lines = [
            f"parallelism plan: {self.dataset_name} x {self.machine_name} "
            f"({self.num_gpus} GPUs, {self.num_nodes} node"
            f"{'s' if self.num_nodes != 1 else ''})",
            f"{'layer':<6}{'dims':<14}{'scheme':<14}{'comm(s)':<12}"
            f"{'compute(s)':<12}reason",
        ]
        for c in self.choices:
            chosen = c.candidate(c.scheme)
            lines.append(
                f"{c.layer:<6}{f'{c.d_in}->{c.d_out}':<14}{c.scheme:<14}"
                f"{chosen.comm_time:<12.3e}{chosen.compute_time:<12.3e}"
                f"{c.reason}"
            )
        lines.append(f"weight sync: {self.weight_sync} allreduce")
        est = " | ".join(
            [f"mixture {self.mixture_estimate:.3e}"]
            + [f"{k} {v:.3e}" for k, v in sorted(self.fixed_estimates.items())]
        )
        lines.append(f"epoch estimates (s): {est}")
        for name, why in sorted(self.exclusions.items()):
            lines.append(f"excluded {name}: {why}")
        lines.append(f"recommendation: {self.best_overall}")
        return "\n".join(lines)


class ParallelismPlanner:
    """Choose 1D / 1.5D / 2D parallelism per layer from the cost model."""

    #: the replicated-operand scheme must beat the best staged scheme by
    #: this factor before it is chosen — its estimate is the least
    #: certain (cache model of the wide SpMM), so the planner demands a
    #: clear win rather than flapping on noise.
    ALLGATHER_MARGIN = 0.9

    def __init__(
        self,
        dataset,
        model: GCNModelSpec,
        machine: MachineSpec,
        num_gpus: Optional[int] = None,
        kernel_costs: Optional[KernelCosts] = None,
        overlap: bool = True,
        order_optimization: bool = True,
        first_layer_skip: bool = True,
        memory_headroom: float = 0.9,
        cache_policy: Optional[CachePolicy] = None,
    ):
        self.dataset = dataset
        self.model = model
        self.machine = machine
        self.P = num_gpus if num_gpus is not None else machine.num_gpus
        if self.P < 1:
            raise ConfigurationError(f"num_gpus must be >= 1, got {self.P}")
        self.overlap = overlap
        self.order_optimization = order_optimization
        self.first_layer_skip = first_layer_skip
        #: training-time embedding cache the trainer will run with; folds
        #: the amortised (refresh + serve) payload shrinkage of forward
        #: broadcasts into the staged-scheme pricing.
        self.cache_policy = cache_policy
        if not (0.0 < memory_headroom <= 1.0):
            raise ConfigurationError(
                f"memory_headroom must be in (0, 1], got {memory_headroom}"
            )
        #: usable fraction of the GPU memory (allocator slack, fragmentation).
        self.memory_budget = int(machine.gpu.memory_bytes * memory_headroom)
        self.cost = CostModel(machine.gpu, kernel_costs or KernelCosts())
        # throwaway context: communicators for duration queries only.
        self._ctx = SimContext(
            machine, num_gpus=self.P, record_trace=False
        )
        self._flat = Communicator(self._ctx)
        self._hier = HierarchicalCommunicator(self._ctx)
        self._multi_node = spans_nodes(machine, list(range(self.P)))

        n = dataset.n
        self.n = n
        self.m = dataset.m
        self.rows_p = -(-n // self.P)  # ceil
        self.tile_nnz = max(self.m // (self.P * self.P), 1)
        self.row_nnz = max(self.m // self.P, 1)

    # -- per-layer estimates -------------------------------------------------

    def _fwd_payload_factor(self, width: int) -> float:
        """Amortised broadcast-payload multiplier of the cache, for one
        forward stage tile of ``width`` columns (1.0 when uncached)."""
        if self.cache_policy is None or self.P <= 1:
            return 1.0
        frac = self.cache_policy.expected_cached_fraction(
            self.rows_p,
            width * FLOAT_SIZE,
            self.model.num_layers * self.P,
        )
        return self.cache_policy.amortized_payload_factor(frac)

    def _staged_cost(
        self, width: int, comm: Communicator, payload_factor: float = 1.0
    ) -> Tuple[float, float]:
        """(comm, compute) of the P-stage broadcast SpMM at ``width``."""
        nbytes = int(self.rows_p * width * FLOAT_SIZE * payload_factor)
        stage_comm = comm.broadcast_duration(0, nbytes)
        comm_total = self.P * stage_comm
        compute_total = self.P * self.cost.spmm_time(
            self.rows_p, self.tile_nnz, width, dense_rows=self.rows_p
        )
        if self.overlap and self.P > 1:
            # pipelined: the longer side hides the shorter, plus the fill.
            return (
                max(comm_total, compute_total) - compute_total + stage_comm
                if comm_total > compute_total
                else stage_comm,
                compute_total,
            )
        return comm_total, compute_total

    def _allgather_cost(self, width: int) -> Tuple[float, float]:
        """(comm, compute) of the replicated-operand SpMM at ``width``."""
        comm_total = self._hier.allgather_duration(self.n * width * FLOAT_SIZE)
        compute_total = self.cost.spmm_time(
            self.rows_p, self.row_nnz, width, dense_rows=self.n
        )
        return comm_total, compute_total

    def _allgather_extra_memory(self, max_width: int) -> int:
        """Gather buffer + hstacked tile rows, per GPU."""
        gather = self.n * max_width * FLOAT_SIZE
        wide_tiles = 2 * _csr_bytes(self.rows_p, self.row_nnz)  # fwd + bwd
        return gather + wide_tiles

    def _baseline_memory(self) -> int:
        """Approximate per-GPU bytes of the 1D trainer's resident state."""
        dims = self.model.layer_dims
        rows = self.rows_p
        feats = rows * dims[0] * FLOAT_SIZE
        adjacency = 2 * _csr_bytes(rows, self.row_nnz)
        outputs = sum(rows * d * FLOAT_SIZE for d in dims[1:])
        max_d = max(dims)
        scratch = 3 * rows * max_d * FLOAT_SIZE  # hw view + 2 bcast buffers
        weights = 4 * sum(
            dims[l] * dims[l + 1] for l in range(self.model.num_layers)
        ) * FLOAT_SIZE
        return feats + adjacency + outputs + scratch + weights

    def _layer_widths(self, layer: int) -> Tuple[int, Optional[int]]:
        """(forward SpMM width, backward SpMM width or None if skipped)."""
        d_in, d_out = self.model.dims_of(layer)
        w_fwd = min(d_in, d_out) if self.order_optimization else d_in
        w_bwd = None if (layer == 0 and self.first_layer_skip) else d_out
        return w_fwd, w_bwd

    def _layer_candidates(
        self, layer: int, memory_left: int
    ) -> Tuple[SchemeCost, ...]:
        w_fwd, w_bwd = self._layer_widths(layer)
        widths = [w_fwd] + ([w_bwd] if w_bwd is not None else [])
        # only forward broadcasts are cacheable (gradient tiles change
        # every epoch); the factor prices the refresh/serve amortisation.
        factors = [self._fwd_payload_factor(w_fwd)] + [1.0] * (len(widths) - 1)

        def staged(comm: Communicator, scheme: str, note: str) -> SchemeCost:
            comm_t = compute_t = 0.0
            for w, f in zip(widths, factors):
                c, k = self._staged_cost(w, comm, payload_factor=f)
                comm_t += c
                compute_t += k
            return SchemeCost(scheme, comm_t, compute_t, 0, True, note)

        flat = staged(self._flat, "1d", "paper 1D staged broadcast")
        hier = staged(
            self._hier, "1d_hier", "staged broadcast, hierarchical phases"
        )
        ag_comm = ag_compute = 0.0
        for w in widths:
            c, k = self._allgather_cost(w)
            ag_comm += c
            ag_compute += k
        ag_mem = self._allgather_extra_memory(max(widths))
        ag_ok = ag_mem <= memory_left
        ag_note = (
            "replicated operand, single wide SpMM"
            if ag_ok
            else (
                f"needs {ag_mem} B extra, {memory_left} B left of the "
                f"per-GPU budget"
            )
        )
        allgather = SchemeCost(
            "1d_allgather", ag_comm, ag_compute, ag_mem, ag_ok, ag_note
        )
        return (flat, hier, allgather)

    def _choose(self, layer: int, memory_left: int) -> LayerChoice:
        d_in, d_out = self.model.dims_of(layer)
        candidates = self._layer_candidates(layer, memory_left)
        flat, hier, allgather = candidates
        staged_best = min((flat, hier), key=lambda c: c.total)
        chosen = staged_best
        if (
            allgather.feasible
            and allgather.total < self.ALLGATHER_MARGIN * staged_best.total
        ):
            chosen = allgather
        if chosen is allgather:
            reason = (
                f"replicating the operand saves "
                f"{staged_best.total / max(allgather.total, 1e-30):.1f}x over "
                f"staged ({staged_best.scheme})"
            )
        elif chosen is hier and self._multi_node:
            reason = (
                f"hierarchical phases cut the staged comm "
                f"{flat.comm_time / max(hier.comm_time, 1e-30):.1f}x vs flat"
            )
        else:
            reason = "single tier: flat staged broadcast is already optimal"
            if not allgather.feasible:
                reason += "; allgather over memory budget"
        return LayerChoice(
            layer=layer,
            d_in=d_in,
            d_out=d_out,
            scheme=chosen.scheme,
            reason=reason,
            candidates=candidates,
        )

    def broadcast_bytes_per_epoch(
        self, cache_policy: Optional[CachePolicy] = None
    ) -> int:
        """Staged-broadcast bytes of one 1D epoch (fwd + bwd SpMMs).

        With ``cache_policy``, forward stages are scaled by the
        amortised refresh/serve payload factor — the ``repro parallel
        plan`` CLI prints this next to the uncached total so the
        expected wire savings of the training cache are visible before
        a run.
        """
        if self.P <= 1:
            return 0
        total = 0.0
        for layer in range(self.model.num_layers):
            w_fwd, w_bwd = self._layer_widths(layer)
            fwd_factor = 1.0
            if cache_policy is not None:
                frac = cache_policy.expected_cached_fraction(
                    self.rows_p,
                    w_fwd * FLOAT_SIZE,
                    self.model.num_layers * self.P,
                )
                fwd_factor = cache_policy.amortized_payload_factor(frac)
            total += self.P * self.rows_p * w_fwd * FLOAT_SIZE * fwd_factor
            if w_bwd is not None:
                total += self.P * self.rows_p * w_bwd * FLOAT_SIZE
        return int(total)

    # -- whole-model fixed grids ---------------------------------------------

    def _estimate_gemms(self, rows: int) -> float:
        """Shared dense work of one epoch on ``rows`` local rows."""
        total = 0.0
        for l in range(self.model.num_layers):
            d_in, d_out = self.model.dims_of(l)
            total += self.cost.gemm_time(rows, d_out, d_in)  # fwd
            total += self.cost.gemm_time(d_in, d_out, rows)  # wgrad
            if l > 0:
                total += self.cost.gemm_time(rows, d_in, d_out)  # hgrad
        return total

    def _weight_sync_cost(self, comm: Communicator) -> float:
        total = 0.0
        for l in range(self.model.num_layers):
            d_in, d_out = self.model.dims_of(l)
            total += comm.allreduce_duration(d_in * d_out * FLOAT_SIZE)
        return total

    def _estimate_15d(self, c: int) -> Optional[float]:
        P = self.P
        if c < 1 or P % c != 0 or c == P:
            return None
        R = P // c
        rows = -(-self.n // R)
        nnz_tile = max(self.m // (R * R), 1)
        if R > 1:
            group = Communicator(self._ctx, ranks=list(range(R)))
            if spans_nodes(self.machine, group.ranks):
                group = HierarchicalCommunicator(
                    self._ctx, ranks=list(range(R))
                )
        else:
            group = None
        replica_ranks = [l * R for l in range(c)]
        replica = Communicator(self._ctx, ranks=replica_ranks)
        if spans_nodes(self.machine, replica_ranks):
            replica = HierarchicalCommunicator(self._ctx, ranks=replica_ranks)
        stages = -(-R // c)
        total = 0.0
        for layer in range(self.model.num_layers):
            w_fwd, w_bwd = self._layer_widths(layer)
            # the 1.5D baseline always multiplies at the layer's operand
            # width (no order optimisation in that code path).
            d_in, d_out = self.model.dims_of(layer)
            for w in [d_in] + ([d_out] if w_bwd is not None else []):
                if group is not None:
                    total += stages * group.broadcast_duration(
                        0, rows * w * FLOAT_SIZE
                    )
                total += stages * self.cost.spmm_time(
                    rows, nnz_tile, w, dense_rows=rows
                )
                total += replica.allreduce_duration(rows * w * FLOAT_SIZE)
        total += self._estimate_gemms(rows)
        world = self._hier if self._multi_node else self._flat
        total += self._weight_sync_cost(world)
        # feasibility: c-fold adjacency replication
        adjacency = 2 * c * _csr_bytes(rows, max(self.m // R, 1))
        feats = rows * self.model.layer_dims[0] * FLOAT_SIZE
        if adjacency + feats > self.memory_budget:
            return None
        return total

    def _estimate_2d(self) -> Optional[Tuple[float, str]]:
        P = self.P
        r = int(P ** 0.5)
        while r * r < P:
            r += 1
        if r * r != P or r < 2:
            return None, f"needs a square GPU count, got {P}"
        if min(self.model.layer_dims) < r:
            return None, (
                f"grid of {r} columns cannot split width "
                f"{min(self.model.layer_dims)}"
            )
        rows = -(-self.n // r)
        nnz_tile = max(self.m // (r * r), 1)
        row_ranks = list(range(r))
        col_ranks = [i * r for i in range(r)]

        def comm_for(ranks):
            if spans_nodes(self.machine, ranks):
                return HierarchicalCommunicator(self._ctx, ranks=ranks)
            return Communicator(self._ctx, ranks=ranks)

        row_comm = comm_for(row_ranks)
        col_comm = comm_for(col_ranks)
        total = 0.0
        a_tile_bytes = _csr_bytes(rows, nnz_tile)
        for layer in range(self.model.num_layers):
            d_in, d_out = self.model.dims_of(layer)
            w_bwd = None if (layer == 0 and self.first_layer_skip) else d_out
            for w in [d_in] + ([w_bwd] if w_bwd is not None else []):
                w_r = -(-w // r)
                slice_bytes = rows * w_r * FLOAT_SIZE
                per_stage = row_comm.broadcast_duration(
                    0, a_tile_bytes
                ) + col_comm.broadcast_duration(0, slice_bytes)
                total += r * per_stage
                total += r * self.cost.spmm_time(
                    rows, nnz_tile, w_r, dense_rows=rows
                )
                total += row_comm.allreduce_duration(rows * w * FLOAT_SIZE)
        total += self._estimate_gemms(rows) / r  # columns split the widths
        world = self._hier if self._multi_node else self._flat
        total += self._weight_sync_cost(world)
        return total, ""

    # -- the plan ------------------------------------------------------------

    def plan(self) -> ParallelismPlan:
        memory_left = max(self.memory_budget - self._baseline_memory(), 0)
        choices: List[LayerChoice] = []
        extra_memory = 0
        for layer in range(self.model.num_layers):
            choice = self._choose(layer, memory_left - extra_memory)
            choices.append(choice)
            if choice.scheme == "1d_allgather":
                # the gather buffer and wide tiles are shared across
                # allgather layers; charge them once, at the widest use.
                extra_memory = max(
                    extra_memory, choice.candidate(choice.scheme).extra_memory
                )

        weight_sync = "hierarchical" if self._multi_node else "flat"
        sync_comm = self._hier if self._multi_node else self._flat
        sync_cost = self._weight_sync_cost(sync_comm)
        gemms = self._estimate_gemms(self.rows_p)

        def epoch_total(schemes: List[str]) -> float:
            total = gemms + sync_cost
            for layer, scheme in enumerate(schemes):
                cand = choices[layer].candidate(scheme)
                total += cand.total
            return total

        mixture_estimate = epoch_total([c.scheme for c in choices])
        fixed: Dict[str, float] = {
            "1d": epoch_total(["1d"] * len(choices)) - sync_cost
            + self._weight_sync_cost(self._flat),
            "1d_hier": epoch_total(["1d_hier"] * len(choices)),
        }
        exclusions: Dict[str, str] = {}
        best_15d = None
        for c in (self.machine.num_nodes, 2):
            est = self._estimate_15d(c)
            if est is not None and (best_15d is None or est < best_15d):
                best_15d = est
        if best_15d is not None:
            fixed["15d"] = best_15d
        else:
            exclusions["15d"] = (
                "no feasible replication factor (divisibility or memory)"
            )
        est_2d, why = self._estimate_2d()
        if est_2d is not None:
            fixed["2d"] = est_2d
        else:
            exclusions["2d"] = why

        return ParallelismPlan(
            dataset_name=getattr(self.dataset, "name", "dataset"),
            machine_name=self.machine.name,
            num_gpus=self.P,
            num_nodes=self.machine.num_nodes,
            choices=choices,
            weight_sync=weight_sync,
            mixture_estimate=mixture_estimate,
            fixed_estimates=fixed,
            exclusions=exclusions,
            extra_memory_per_gpu=extra_memory,
        )
