"""R-MAT (Recursive MATrix) graph generator (Chakrabarti et al., 2004).

The other standard synthetic-graph family in HPC work (Graph500 uses
it). Each edge picks its endpoints by recursively descending a 2x2
probability grid ``[[a, b], [c, d]]``; skewed grids produce the
power-law, self-similar structure real graphs show. Included alongside
BTER/Chung-Lu so ordering/balance studies can sweep generator families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import OFFSET_DTYPE
from repro.errors import DatasetError
from repro.sparse.coo import COOMatrix
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class RMATConfig:
    """Parameters of an R-MAT generation run.

    ``scale`` is log2 of the vertex count; ``edge_factor`` the number of
    (pre-dedup) edges per vertex. Defaults are the Graph500 quadrant
    probabilities (a=0.57, b=0.19, c=0.19, d=0.05).
    """

    scale: int
    edge_factor: int = 16
    a: float = 0.57
    b: float = 0.19
    c: float = 0.19

    def __post_init__(self) -> None:
        if self.scale < 1 or self.scale > 30:
            raise DatasetError(f"scale must be in [1, 30], got {self.scale}")
        if self.edge_factor < 1:
            raise DatasetError(
                f"edge_factor must be >= 1, got {self.edge_factor}"
            )
        for name, p in (("a", self.a), ("b", self.b), ("c", self.c)):
            if not (0.0 < p < 1.0):
                raise DatasetError(f"{name} must be in (0, 1), got {p}")
        if self.a + self.b + self.c >= 1.0:
            raise DatasetError("a + b + c must be < 1 (d = 1 - a - b - c)")

    @property
    def d(self) -> float:
        return 1.0 - self.a - self.b - self.c

    @property
    def num_vertices(self) -> int:
        return 1 << self.scale

    @property
    def num_edges(self) -> int:
        return self.num_vertices * self.edge_factor


def rmat_graph(
    config: RMATConfig,
    seed: SeedLike = None,
    symmetrize: bool = True,
) -> COOMatrix:
    """Generate an R-MAT graph; returns the (symmetrised) COO adjacency.

    Vectorised descent: for each of the ``scale`` bit levels, every edge
    draws its quadrant at once (no per-edge Python loop). Self-loops are
    dropped; duplicate edges merge to weight 1.
    """
    rng = as_generator(seed)
    n_bits = config.scale
    m = config.num_edges
    rows = np.zeros(m, dtype=OFFSET_DTYPE)
    cols = np.zeros(m, dtype=OFFSET_DTYPE)
    p_right = config.b + config.d  # P(column bit = 1)
    # P(row bit = 1 | column bit): c/(a+c) when col=0, d/(b+d) when col=1
    p_row_given_col0 = config.c / (config.a + config.c)
    p_row_given_col1 = config.d / (config.b + config.d)
    for _bit in range(n_bits):
        col_bit = rng.random(m) < p_right
        p_row = np.where(col_bit, p_row_given_col1, p_row_given_col0)
        row_bit = rng.random(m) < p_row
        rows = (rows << 1) | row_bit
        cols = (cols << 1) | col_bit
    keep = rows != cols
    edges = np.stack([rows[keep], cols[keep]], axis=1)
    coo = COOMatrix.from_edges(config.num_vertices, edges, symmetrize=symmetrize)
    coo.vals.fill(1.0)
    return coo
