"""Dataset reordering: apply any vertex permutation to a functional dataset.

Used by the ordering ablation (random vs BFS vs degree-sorted vs
original, extending §5.2): the permuted dataset trains identically —
the GCN is permutation-equivariant — but its uniform 1D tiles carry
very different nonzero balance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.datasets.loader import Dataset
from repro.sparse.coo import COOMatrix
from repro.sparse.permutation import (
    apply_permutation,
    bfs_permutation,
    degree_sort_permutation,
    identity_permutation,
    permute_rows,
    random_permutation,
)
from repro.utils.rng import SeedLike


def reorder_dataset(dataset: Dataset, perm: np.ndarray) -> Dataset:
    """A new dataset with vertices renumbered by ``perm`` (new = perm[old])."""
    if dataset.is_symbolic:
        raise ConfigurationError("reorder_dataset needs a functional dataset")
    return Dataset(
        name=f"{dataset.name}#reordered",
        adjacency=apply_permutation(dataset.adjacency, perm),
        features=permute_rows(dataset.features, perm),
        labels=permute_rows(dataset.labels, perm),
        train_mask=permute_rows(dataset.train_mask, perm),
        val_mask=permute_rows(dataset.val_mask, perm),
        test_mask=permute_rows(dataset.test_mask, perm),
        num_classes=dataset.num_classes,
    )


def ordering_permutation(
    dataset: Dataset, ordering: str, seed: SeedLike = None
) -> np.ndarray:
    """A named vertex ordering for ``dataset``.

    ``original`` — identity; ``random`` — §5.2's balancing permutation;
    ``degree`` — hubs first (the adversarial concentration case);
    ``bfs`` — locality-first traversal order.
    """
    n = dataset.n
    if ordering == "original":
        return identity_permutation(n)
    if ordering == "random":
        return random_permutation(n, seed=seed)
    if ordering == "degree":
        return degree_sort_permutation(dataset.adjacency.row_degrees())
    if ordering == "bfs":
        return bfs_permutation(dataset.adjacency)
    raise ConfigurationError(
        f"unknown ordering {ordering!r}; "
        "expected original | random | degree | bfs"
    )
