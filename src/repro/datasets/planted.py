"""Planted-partition datasets with learnable labels.

Accuracy experiments (the paper's §6 claim that MG-GCN matches DGL's
Reddit accuracy) need a dataset where GCN training *converges to a
meaningful accuracy*, which random labels cannot provide. The planted
partition model supplies it: vertices belong to ``num_classes``
communities; within-community edges are more likely than cross ones,
and features are noisy community centroids. A GCN resolves the classes
well above chance within tens of epochs, so convergence and parity
between trainers are crisp, testable signals.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.config import FLOAT_DTYPE, OFFSET_DTYPE
from repro.errors import DatasetError
from repro.datasets.synthetic import split_masks
from repro.sparse.coo import COOMatrix
from repro.utils.rng import SeedLike, as_generator, split_generator


def planted_partition_dataset(
    n: int,
    num_classes: int,
    feature_dim: int,
    avg_degree: float = 10.0,
    homophily: float = 0.8,
    feature_noise: float = 1.0,
    train_fraction: float = 0.3,
    seed: SeedLike = None,
) -> Tuple[COOMatrix, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generate a planted-partition node-classification dataset.

    ``homophily`` is the probability that an edge stays within its
    endpoint's community. Returns
    ``(adjacency, features, labels, train, val, test)``.
    """
    if n < num_classes:
        raise DatasetError(f"need n >= num_classes, got {n} < {num_classes}")
    if not (0.0 <= homophily <= 1.0):
        raise DatasetError(f"homophily must be in [0, 1], got {homophily}")
    if avg_degree <= 0:
        raise DatasetError(f"avg_degree must be positive, got {avg_degree}")
    rng = as_generator(seed)
    rng_labels, rng_edges, rng_feat, rng_split = split_generator(rng, 4)

    labels = rng_labels.integers(0, num_classes, size=n, dtype=np.int64)
    # make sure every class is inhabited so centroids are meaningful
    labels[:num_classes] = np.arange(num_classes)

    members = [np.nonzero(labels == c)[0] for c in range(num_classes)]
    num_edges = max(int(n * avg_degree / 2), 1)

    src = rng_edges.integers(0, n, size=num_edges, dtype=OFFSET_DTYPE)
    stay = rng_edges.random(num_edges) < homophily
    dst = np.empty(num_edges, dtype=OFFSET_DTYPE)
    # within-community endpoints
    for c in range(num_classes):
        sel = stay & (labels[src] == c)
        count = int(sel.sum())
        if count:
            dst[sel] = rng_edges.choice(members[c], size=count)
    # cross-community endpoints: uniform over all vertices
    cross = ~stay
    dst[cross] = rng_edges.integers(0, n, size=int(cross.sum()), dtype=OFFSET_DTYPE)

    keep = src != dst
    adj = COOMatrix.from_edges(
        n, np.stack([src[keep], dst[keep]], axis=1), symmetrize=True
    )
    adj.vals.fill(1.0)

    centroids = rng_feat.standard_normal((num_classes, feature_dim)) * 2.0
    features = (
        centroids[labels]
        + rng_feat.standard_normal((n, feature_dim)) * feature_noise
    ).astype(FLOAT_DTYPE)

    train, val, test = split_masks(n, train_fraction, seed=rng_split)
    return adj, features, labels, train, val, test
