"""BTER: Block Two-level Erdős–Rényi graph generator (Kolda et al., 2014).

The paper's Section 6 scalability study (Fig. 9) uses BTER to generate
synthetic graphs matching the Arxiv degree profile with the average
degree scaled 1x..128x. BTER takes a target degree distribution and a
clustering-coefficient-by-degree profile and proceeds in two phases:

* **Phase 1 (affinity blocks):** vertices are grouped by degree into
  blocks of size ``d_min + 1`` (``d_min`` = smallest degree in the
  block); each block is an Erdős–Rényi graph with connection probability
  ``rho_d`` derived from the clustering target (``rho = cc^(1/3)``).
* **Phase 2 (excess degree):** each vertex's leftover degree
  ``d_i - rho (b_i - 1)`` feeds a Chung–Lu pass that supplies the
  heavy-tailed global structure.

Degree-1 vertices skip phase 1 (no triangles are possible) exactly as in
the reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from repro.config import OFFSET_DTYPE
from repro.errors import DatasetError
from repro.datasets.synthetic import chung_lu_graph, power_law_degrees
from repro.sparse.coo import COOMatrix
from repro.utils.rng import SeedLike, as_generator, split_generator

CCProfile = Union[float, Callable[[np.ndarray], np.ndarray]]


@dataclass(frozen=True)
class BTERConfig:
    """Inputs of the BTER generator."""

    #: target degree of every vertex (positive integers).
    degrees: np.ndarray
    #: clustering coefficient by degree: either a constant or a callable
    #: mapping a degree array to per-vertex coefficients in [0, 1].
    clustering: CCProfile = 0.15

    def clustering_of(self, degrees: np.ndarray) -> np.ndarray:
        if callable(self.clustering):
            cc = np.asarray(self.clustering(degrees), dtype=np.float64)
        else:
            cc = np.full(degrees.shape, float(self.clustering))
        if np.any((cc < 0) | (cc > 1)):
            raise DatasetError("clustering coefficients must lie in [0, 1]")
        return cc


def degree_profile_from_graph(adj: COOMatrix) -> np.ndarray:
    """The (sorted descending) degree sequence of an existing graph.

    This is the paper's workflow: profile the Arxiv dataset's degree
    distribution, then scale it.
    """
    degrees = adj.row_degrees()
    return np.sort(degrees)[::-1].astype(np.int64)


def arxiv_like_degrees(
    n: int, scale: int = 1, base_mean: float = 7.0, exponent: float = 2.3
) -> np.ndarray:
    """An Arxiv-shaped degree sequence with the mean scaled by ``scale``.

    Matches the paper's synthetic datasets ``1x ... 128x``: same
    power-law shape, average degree multiplied by the scale factor.
    """
    if scale < 1:
        raise DatasetError(f"scale must be >= 1, got {scale}")
    weights = power_law_degrees(n, base_mean * scale, exponent=exponent)
    return np.maximum(np.round(weights), 1).astype(np.int64)


def bter_graph(config: BTERConfig, seed: SeedLike = None) -> COOMatrix:
    """Generate a BTER graph. Returns the symmetrised adjacency in COO."""
    degrees = np.asarray(config.degrees, dtype=np.int64)
    if degrees.ndim != 1 or degrees.size == 0:
        raise DatasetError("degrees must be a non-empty 1-D array")
    if np.any(degrees < 1):
        raise DatasetError("BTER requires degrees >= 1")
    n = degrees.size
    rng = as_generator(seed)
    rng_blocks, rng_cl = split_generator(rng, 2)

    # sort ascending so blocks group similar degrees (vertex ids keep the
    # caller's order via argsort indirection).
    order = np.argsort(degrees, kind="stable")
    sorted_deg = degrees[order]
    cc = config.clustering_of(sorted_deg)

    excess = sorted_deg.astype(np.float64).copy()
    rows_list = []
    cols_list = []

    # --- phase 1: affinity blocks -----------------------------------------
    start = int(np.searchsorted(sorted_deg, 2))  # degree-1 vertices skip
    i = start
    while i < n:
        d_min = int(sorted_deg[i])
        size = min(d_min + 1, n - i)
        if size >= 2:
            rho = float(np.mean(cc[i : i + size]) ** (1.0 / 3.0))
            if rho > 0:
                block = order[i : i + size]
                iu, ju = np.triu_indices(size, k=1)
                mask = rng_blocks.random(iu.size) < rho
                if mask.any():
                    rows_list.append(block[iu[mask]])
                    cols_list.append(block[ju[mask]])
                expected_internal = rho * (size - 1)
                excess[i : i + size] = np.maximum(
                    excess[i : i + size] - expected_internal, 0.0
                )
        i += size

    # --- phase 2: Chung–Lu on the excess degrees ----------------------------
    excess_by_vertex = np.empty(n, dtype=np.float64)
    excess_by_vertex[order] = excess
    if excess_by_vertex.sum() > 1.0:
        cl = chung_lu_graph(
            excess_by_vertex,
            num_edges=max(int(excess_by_vertex.sum() / 2), 1),
            seed=rng_cl,
            symmetrize=False,
        )
        rows_list.append(cl.rows)
        cols_list.append(cl.cols)

    if rows_list:
        rows = np.concatenate(rows_list).astype(OFFSET_DTYPE)
        cols = np.concatenate(cols_list).astype(OFFSET_DTYPE)
    else:  # degenerate: all-degree-1 graph with no excess — ring fallback
        rows = np.arange(n, dtype=OFFSET_DTYPE)
        cols = (rows + 1) % n
    edges = np.stack([rows, cols], axis=1)
    coo = COOMatrix.from_edges(n, edges, symmetrize=True)
    coo.vals.fill(1.0)
    return coo
