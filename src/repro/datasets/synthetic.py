"""Synthetic graph generation matched to dataset statistics.

The generator is Chung–Lu style: given an expected-degree sequence
``w``, each sampled edge picks both endpoints with probability
proportional to ``w``, reproducing the degree profile in expectation.
Real benchmark graphs are heavy-tailed, so the default profile is a
(discrete, truncated) power law whose exponent comes from the dataset
spec and whose mean is calibrated to the target average degree.

Vertex ids are assigned in *descending expected degree* order, which
mimics the hub-concentrated "original orderings" of real datasets —
this is exactly the adversarial layout the paper's random permutation
(§5.2) fixes, so functional runs reproduce the Fig. 6/7 imbalance
without any extra machinery.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE, OFFSET_DTYPE
from repro.errors import DatasetError
from repro.datasets.specs import DatasetSpec
from repro.sparse.coo import COOMatrix
from repro.utils.rng import SeedLike, as_generator


def power_law_degrees(
    n: int,
    mean_degree: float,
    exponent: float = 2.1,
    max_degree: Optional[int] = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """An expected-degree sequence with a truncated power-law shape.

    Degrees are deterministic quantiles of the Pareto-like distribution
    (not sampled), sorted descending, then rescaled so their mean is
    ``mean_degree``. Deterministic quantiles keep the profile identical
    across seeds, so experiments vary only the edge sampling.
    """
    if n <= 0:
        raise DatasetError(f"need a positive vertex count, got {n}")
    if mean_degree <= 0:
        raise DatasetError(f"need a positive mean degree, got {mean_degree}")
    if exponent <= 1.0:
        raise DatasetError(f"power-law exponent must exceed 1, got {exponent}")
    if max_degree is None:
        max_degree = max(int(np.sqrt(n * mean_degree)), int(mean_degree) + 1)
    # inverse-CDF quantiles of P(D >= d) ~ d^{1-exponent}
    u = (np.arange(n) + 0.5) / n
    raw = u ** (-1.0 / (exponent - 1.0))
    raw = np.minimum(raw, float(max_degree))
    weights = raw * (mean_degree / raw.mean())
    return np.sort(weights)[::-1].astype(np.float64)


def chung_lu_graph(
    weights: np.ndarray,
    num_edges: Optional[int] = None,
    seed: SeedLike = None,
    symmetrize: bool = True,
) -> COOMatrix:
    """Sample a Chung–Lu graph from an expected-degree sequence.

    ``num_edges`` is the number of *undirected* edges to draw before
    deduplication and symmetrisation (defaults to ``sum(w) / 2``).
    Self-loops are dropped; duplicates are merged to weight 1.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise DatasetError("weights must be a non-empty 1-D array")
    if np.any(weights < 0):
        raise DatasetError("negative expected degrees")
    n = weights.size
    rng = as_generator(seed)
    total = weights.sum()
    if total <= 0:
        raise DatasetError("expected-degree sequence sums to zero")
    if num_edges is None:
        num_edges = max(int(total / 2), 1)
    p = weights / total
    src = rng.choice(n, size=num_edges, p=p).astype(OFFSET_DTYPE)
    dst = rng.choice(n, size=num_edges, p=p).astype(OFFSET_DTYPE)
    keep = src != dst
    edges = np.stack([src[keep], dst[keep]], axis=1)
    coo = COOMatrix.from_edges(n, edges, symmetrize=symmetrize)
    # collapse multi-edges to unit weight
    coo.vals.fill(1.0)
    return coo


def random_features(
    n: int, d: int, seed: SeedLike = None
) -> np.ndarray:
    """Standard-normal features, float32."""
    rng = as_generator(seed)
    return rng.standard_normal((n, d)).astype(FLOAT_DTYPE)


def random_labels(n: int, num_classes: int, seed: SeedLike = None) -> np.ndarray:
    rng = as_generator(seed)
    return rng.integers(0, num_classes, size=n, dtype=np.int64)


def split_masks(
    n: int,
    train_fraction: float,
    val_fraction: float = 0.25,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random train/val/test boolean masks partitioning ``[0, n)``."""
    if not (0.0 < train_fraction < 1.0):
        raise DatasetError(f"train_fraction must be in (0,1), got {train_fraction}")
    if not (0.0 <= val_fraction < 1.0 - train_fraction):
        raise DatasetError(
            f"val_fraction {val_fraction} incompatible with train {train_fraction}"
        )
    rng = as_generator(seed)
    order = rng.permutation(n)
    n_train = max(int(round(n * train_fraction)), 1)
    n_val = int(round(n * val_fraction))
    train = np.zeros(n, dtype=bool)
    val = np.zeros(n, dtype=bool)
    test = np.zeros(n, dtype=bool)
    train[order[:n_train]] = True
    val[order[n_train : n_train + n_val]] = True
    test[order[n_train + n_val :]] = True
    return train, val, test


def synthesize_from_spec(spec: DatasetSpec, seed: SeedLike = None):
    """A functional dataset instance matched to ``spec``.

    Returns ``(adjacency COO, features, labels, train, val, test)``. The
    undirected draw count is ``m / 2`` so the symmetrised edge count
    lands near ``m``.
    """
    rng = as_generator(seed)
    weights = power_law_degrees(
        spec.n, spec.avg_degree, exponent=spec.degree_exponent
    )
    adj = chung_lu_graph(weights, num_edges=max(spec.m // 2, 1), seed=rng)
    features = random_features(spec.n, spec.d0, seed=rng)
    labels = random_labels(spec.n, spec.num_classes, seed=rng)
    train, val, test = split_masks(spec.n, spec.train_fraction, seed=rng)
    return adj, features, labels, train, val, test
