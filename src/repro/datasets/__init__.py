"""Datasets: the paper's Table-1 registry plus synthetic generators."""

from repro.datasets.specs import DatasetSpec, DATASETS, get_spec, table1_rows
from repro.datasets.synthetic import (
    power_law_degrees,
    chung_lu_graph,
    synthesize_from_spec,
)
from repro.datasets.bter import bter_graph, degree_profile_from_graph, BTERConfig
from repro.datasets.planted import planted_partition_dataset
from repro.datasets.loader import (
    Dataset,
    SymbolicDataset,
    load_dataset,
    sample_query_vertices,
)
from repro.datasets.rmat import RMATConfig, rmat_graph
from repro.datasets.reorder import reorder_dataset, ordering_permutation

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "get_spec",
    "table1_rows",
    "power_law_degrees",
    "chung_lu_graph",
    "synthesize_from_spec",
    "bter_graph",
    "degree_profile_from_graph",
    "BTERConfig",
    "planted_partition_dataset",
    "Dataset",
    "SymbolicDataset",
    "load_dataset",
    "sample_query_vertices",
    "RMATConfig",
    "rmat_graph",
    "reorder_dataset",
    "ordering_permutation",
]
