"""Dataset containers and the unified loading entry point.

Two container flavours, one per execution mode:

* :class:`Dataset` — a fully materialised graph (adjacency + features +
  labels + splits) for functional runs;
* :class:`SymbolicDataset` — statistics only, for symbolic runs of the
  paper-scale graphs (Papers/Proteins/full Reddit).

``load_dataset(name, scale=...)`` is the main entry: it fetches the
Table-1 spec, optionally down-scales it, and synthesises a matched
functional instance (or returns the symbolic descriptor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import DatasetError
from repro.datasets.planted import planted_partition_dataset
from repro.datasets.specs import DatasetSpec, get_spec
from repro.datasets.synthetic import synthesize_from_spec
from repro.sparse.coo import COOMatrix
from repro.utils.rng import SeedLike, as_generator


@dataclass
class Dataset:
    """A functional (fully materialised) node-classification dataset."""

    name: str
    adjacency: COOMatrix
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        n = self.adjacency.shape[0]
        if self.adjacency.shape[0] != self.adjacency.shape[1]:
            raise DatasetError(f"{self.name}: adjacency must be square")
        for arr, label in (
            (self.features, "features"),
            (self.labels, "labels"),
            (self.train_mask, "train_mask"),
            (self.val_mask, "val_mask"),
            (self.test_mask, "test_mask"),
        ):
            if arr.shape[0] != n:
                raise DatasetError(
                    f"{self.name}: {label} has {arr.shape[0]} rows, expected {n}"
                )
        if self.labels.size and (
            self.labels.min() < 0 or self.labels.max() >= self.num_classes
        ):
            raise DatasetError(f"{self.name}: labels out of range")
        if not self.train_mask.any():
            raise DatasetError(f"{self.name}: empty training split")

    @property
    def n(self) -> int:
        return self.adjacency.shape[0]

    @property
    def m(self) -> int:
        return self.adjacency.nnz

    @property
    def d0(self) -> int:
        return int(self.features.shape[1])

    @property
    def avg_degree(self) -> float:
        return self.m / self.n if self.n else 0.0

    @property
    def num_train(self) -> int:
        return int(self.train_mask.sum())

    @property
    def is_symbolic(self) -> bool:
        return False


@dataclass(frozen=True)
class SymbolicDataset:
    """Statistics-only dataset for symbolic (metadata) runs."""

    name: str
    n: int
    m: int
    d0: int
    num_classes: int
    train_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.n <= 0 or self.m < 0 or self.d0 <= 0 or self.num_classes <= 0:
            raise DatasetError(f"{self.name}: invalid symbolic statistics")

    @property
    def avg_degree(self) -> float:
        return self.m / self.n

    @property
    def num_train(self) -> int:
        return max(int(self.n * self.train_fraction), 1)

    @property
    def is_symbolic(self) -> bool:
        return True

    @classmethod
    def from_spec(cls, spec: DatasetSpec) -> "SymbolicDataset":
        return cls(
            name=spec.name,
            n=spec.n,
            m=spec.m,
            d0=spec.d0,
            num_classes=spec.num_classes,
            train_fraction=spec.train_fraction,
        )


AnyDataset = Union[Dataset, SymbolicDataset]


def load_dataset(
    name: str,
    scale: float = 1.0,
    symbolic: bool = False,
    learnable: bool = False,
    seed: SeedLike = None,
) -> AnyDataset:
    """Load a Table-1 dataset (synthetic stand-in) by name.

    Parameters
    ----------
    name:
        Table-1 dataset name (``cora``, ``arxiv``, ``papers``,
        ``products``, ``proteins``, ``reddit``).
    scale:
        Multiplier on ``n`` and ``m`` for functional runs; ``1.0`` keeps
        the paper's size (only feasible for the small graphs).
    symbolic:
        Return a :class:`SymbolicDataset` (statistics only, full size —
        ``scale`` still applies if not 1).
    learnable:
        Use the planted-partition generator (features/labels carry
        signal) instead of the degree-matched random-label generator.
        Used by accuracy/convergence experiments.
    """
    spec = get_spec(name)
    if scale != 1.0:
        spec = spec.scaled(scale)
    if symbolic:
        return SymbolicDataset.from_spec(spec)
    if learnable:
        adj, x, y, train, val, test = planted_partition_dataset(
            n=spec.n,
            num_classes=spec.num_classes,
            feature_dim=spec.d0,
            avg_degree=max(spec.avg_degree, 2.0),
            train_fraction=spec.train_fraction,
            seed=seed,
        )
    else:
        adj, x, y, train, val, test = synthesize_from_spec(spec, seed=seed)
    return Dataset(
        name=spec.name,
        adjacency=adj,
        features=x,
        labels=y,
        train_mask=train,
        val_mask=val,
        test_mask=test,
        num_classes=spec.num_classes,
    )


def sample_query_vertices(
    dataset: Dataset,
    n: int,
    skew: float = 0.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample ``n`` query-target vertex ids (with replacement).

    ``skew == 0`` draws uniformly over the vertex set. ``skew > 0``
    draws Zipf-over-degree-rank: vertices are ranked by total degree
    (descending, ties broken by vertex id for determinism) and rank
    ``r`` is drawn with probability proportional to ``(r + 1)**-skew``
    — the hot-vertex access pattern real recommendation/fraud query
    streams exhibit, and the regime degree-aware cache pinning targets.

    Shared by the serving workload generators
    (:mod:`repro.serve.workload`) and the serving tests.
    """
    if dataset.is_symbolic:
        raise DatasetError("sample_query_vertices needs a functional dataset")
    if n < 0:
        raise DatasetError(f"cannot sample {n} query vertices")
    if skew < 0:
        raise DatasetError(f"skew must be >= 0, got {skew}")
    rng = as_generator(seed)
    num_vertices = dataset.n
    if num_vertices == 0:
        raise DatasetError(f"{dataset.name}: empty vertex set")
    if skew == 0.0:
        return rng.integers(0, num_vertices, size=n, dtype=np.int64)
    adj = dataset.adjacency
    degree = np.bincount(adj.rows, minlength=num_vertices) + np.bincount(
        adj.cols, minlength=num_vertices
    )
    by_degree = np.argsort(-degree, kind="stable")
    weights = (np.arange(num_vertices, dtype=np.float64) + 1.0) ** -skew
    probabilities = weights / weights.sum()
    ranks = rng.choice(num_vertices, size=n, p=probabilities)
    return by_degree[ranks].astype(np.int64)
