"""The paper's benchmark datasets (Table 1), as a spec registry.

The actual graph payloads are not redistributable (and ogbn-papers100M
would not fit in this environment anyway), so each dataset is described
by the statistics that drive cost and memory: vertex count ``n``, edge
count ``m``, input feature width ``d0``, class count ``dL`` and average
degree ``k`` — exactly the columns of Table 1. Functional runs
instantiate a synthetic graph matched to (a scale of) these statistics;
symbolic runs consume the numbers directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import DatasetError


@dataclass(frozen=True)
class DatasetSpec:
    """Statistics of one benchmark dataset (one row of Table 1)."""

    name: str
    #: number of vertices.
    n: int
    #: number of (directed) stored edges of the symmetrised graph.
    m: int
    #: input feature dimension.
    d0: int
    #: number of classes (output dimension).
    num_classes: int
    #: power-law exponent used when synthesising a matched graph.
    degree_exponent: float = 2.1
    #: fraction of vertices in the training split.
    train_fraction: float = 0.5

    @property
    def avg_degree(self) -> float:
        return self.m / self.n if self.n else 0.0

    def scaled(self, scale: float) -> "DatasetSpec":
        """A down/up-scaled spec preserving average degree and widths.

        Used to instantiate functionally-runnable stand-ins for graphs
        whose full size exceeds host memory.
        """
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        n = max(int(round(self.n * scale)), 16)
        m = max(int(round(self.m * scale)), n)
        return DatasetSpec(
            name=f"{self.name}@{scale:g}x",
            n=n,
            m=m,
            d0=self.d0,
            num_classes=self.num_classes,
            degree_exponent=self.degree_exponent,
            train_fraction=self.train_fraction,
        )


#: Table 1 of the paper, verbatim.
DATASETS: Dict[str, DatasetSpec] = {
    "cora": DatasetSpec("cora", n=3_300, m=9_200, d0=3_700, num_classes=6,
                        degree_exponent=2.5),
    "arxiv": DatasetSpec("arxiv", n=169_000, m=1_160_000, d0=128, num_classes=40,
                         degree_exponent=2.3),
    "papers": DatasetSpec("papers", n=111_000_000, m=1_610_000_000, d0=128,
                          num_classes=172, degree_exponent=2.2),
    "products": DatasetSpec("products", n=2_500_000, m=126_000_000, d0=104,
                            num_classes=47, degree_exponent=2.0),
    "proteins": DatasetSpec("proteins", n=8_740_000, m=1_300_000_000, d0=128,
                            num_classes=256, degree_exponent=1.9),
    "reddit": DatasetSpec("reddit", n=233_000, m=115_000_000, d0=602,
                          num_classes=41, degree_exponent=1.8),
}

#: Dataset order used throughout the paper's figures.
FIGURE_ORDER: Tuple[str, ...] = ("cora", "arxiv", "products", "proteins", "reddit")


def get_spec(name: str) -> DatasetSpec:
    """Look up a Table-1 dataset by (case-insensitive) name."""
    key = name.lower()
    if key not in DATASETS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return DATASETS[key]


def table1_rows() -> List[Tuple[str, int, int, int, int, int]]:
    """(name, n, m, d0, num_classes, avg_degree) rows in paper order."""
    order = ["cora", "arxiv", "papers", "products", "proteins", "reddit"]
    return [
        (
            s.name,
            s.n,
            s.m,
            s.d0,
            s.num_classes,
            int(round(s.avg_degree)),
        )
        for s in (DATASETS[name] for name in order)
    ]
