"""The serving engine: online GCN inference on the virtual-GPU machine.

:class:`ServingEngine` is the inference-side counterpart of the MG-GCN
trainer. It restores weights from a checkpoint (no trainer, no optimizer
state), shards the normalised adjacency across the machine's virtual
GPUs with the same 1D row partitioner training uses, and answers
vertex-classification queries with a *partial* forward pass:

* a query for vertex ``v`` at an ``L``-layer model walks the layers top
  down, consulting the :class:`~repro.cache.lru.EmbeddingCache` at
  every level — a cached ``H^(l)[u]`` truncates the entire subtree below
  ``(u, l)``, so only the uncached frontier expands into its in-edge
  neighborhood;
* the uncached rows are then computed bottom up with gathered sub-CSR
  SpMMs over exactly the needed rows, reproducing the reference
  full-batch forward's arithmetic on that subset (same normalisation,
  same accumulation order per row — results agree to float32 rounding).

Timing rides the discrete-event engine: each served micro-batch submits
per-rank GeMM / gather / SpMM ops (tagged with the batch's correlation
id) whose simulated completion is the batch's service time. The cache is
warmed by one full-batch forward captured into an
:class:`~repro.plan.plan.ExecutionPlan`; re-warming after a weight
update replays the plan — the compute closure reads the live weights,
so the numerics follow the new model version while the schedule is
reused, the CUDA-Graphs pattern applied to serving.

Failures come from a declarative :class:`~repro.resilience.FaultPlan`:
when the simulated clock passes a device failure, the engine *degrades*
— the dead rank's vertices are rerouted to the survivors, its cache
partition is invalidated, the warm plan is dropped — and keeps serving
with identical logits (the maths is global; only placement and timing
change).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.datasets.loader import Dataset
from repro.device.engine import SimContext
from repro.device.tensor import Mode
from repro.errors import ConfigurationError, RecoveryError
from repro.hardware.machines import dgx_a100
from repro.hardware.spec import MachineSpec
from repro.kernels.cost import CostModel
from repro.nn.checkpoint import load_weights
from repro.nn.model import GCNModelSpec
from repro.plan.capture import PlanCapture
from repro.plan.plan import ExecutionPlan
from repro.resilience.faults import FaultPlan
from repro.serve.batcher import MicroBatch, MicroBatcher
from repro.cache.lru import EmbeddingCache, pin_by_degree
from repro.serve.metrics import DegradeEvent, ServingMetrics
from repro.serve.workload import InferenceRequest
from repro.sparse.csr import CSRMatrix
from repro.sparse.normalize import gcn_normalize
from repro.sparse.partition import uniform_partition

_ITEMSIZE = np.dtype(FLOAT_DTYPE).itemsize
_LINK_LATENCY = 1.5e-6
#: Frontier GeMMs below this row count are zero-padded up to it. BLAS
#: picks its sgemm kernel (and hence the k-accumulation order of each
#: output row) by operand height: below this threshold different
#: heights produce ulp-different rows, at or above it rows are
#: height-invariant. Padding every short frontier to exactly this
#: height keeps the partial recompute on the stable kernel, so frontier
#: rows reproduce the full-batch forward's rows bit-for-bit regardless
#: of how many misses were batched together (zero rows don't feed into
#: the kept rows). Dynamic-graph delta invalidation leans on this: a
#: surviving cache entry must equal what a cold engine would compute,
#: whatever frontier shape either engine happened to use.
_GEMM_PAD_ROWS = 128


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one serving deployment."""

    machine: MachineSpec = field(default_factory=dgx_a100)
    num_gpus: int = 4
    #: embedding-cache capacity in entries ((vertex, layer) rows); 0
    #: disables caching — the cold configuration of the benchmarks.
    cache_entries: int = 0
    #: top-degree vertices exempt from LRU eviction (0 = no pinning).
    num_pinned: int = 0
    max_batch_size: int = 8
    #: seconds a batch head-of-line request may wait for co-riders.
    max_wait: float = 1e-3
    fault_plan: FaultPlan = field(default_factory=FaultPlan.empty)
    record_trace: bool = True
    #: kernel backend name (:mod:`repro.backends`) the functional
    #: serving math routes through — same registry as training.
    kernel_backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigurationError(
                f"num_gpus must be >= 1, got {self.num_gpus}"
            )
        if self.cache_entries < 0:
            raise ConfigurationError(
                f"cache_entries must be >= 0, got {self.cache_entries}"
            )
        if self.num_pinned < 0:
            raise ConfigurationError(
                f"num_pinned must be >= 0, got {self.num_pinned}"
            )


@dataclass(frozen=True)
class ServingResult:
    """Everything one :meth:`ServingEngine.serve` run produced."""

    #: request id -> ``(num_vertices, num_classes)`` logits.
    logits: Dict[int, np.ndarray]
    summary: Dict[str, float]


@dataclass
class _LayerWork:
    """Recompute accounting of one layer of one query (for timing)."""

    layer: int
    miss_ids: np.ndarray
    need_size: int
    nnz: int
    d_in: int
    d_out: int


class ServingEngine:
    """Online GCN inference over cached embeddings and virtual GPUs."""

    def __init__(
        self,
        dataset: Dataset,
        weights: Sequence[np.ndarray],
        spec: GCNModelSpec,
        config: Optional[ServingConfig] = None,
        telemetry=None,
        slo=None,
    ):
        if dataset.is_symbolic:
            raise ConfigurationError("serving needs a functional dataset")
        config = config or ServingConfig()
        if spec.layer_dims[0] != dataset.d0:
            raise ConfigurationError(
                f"model input width {spec.layer_dims[0]} != dataset d0 "
                f"{dataset.d0}"
            )
        if spec.layer_dims[-1] != dataset.num_classes:
            raise ConfigurationError(
                f"model output width {spec.layer_dims[-1]} != num_classes "
                f"{dataset.num_classes}"
            )
        if len(weights) != spec.num_layers:
            raise ConfigurationError(
                f"{len(weights)} weight arrays for {spec.num_layers} layers"
            )
        self.dataset = dataset
        self.spec = spec
        self.config = config
        self.weights: List[np.ndarray] = [
            np.asarray(w, dtype=FLOAT_DTYPE) for w in weights
        ]
        for l, w in enumerate(self.weights):
            if w.shape != spec.dims_of(l):
                raise ConfigurationError(
                    f"weight {l} shape {w.shape} != spec {spec.dims_of(l)}"
                )
        #: bumped on every weight swap; stamps cache entries.
        self.model_version = 0

        # normalised adjacency; the forward uses A_hat^T, like training.
        self.a_hat = gcn_normalize(dataset.adjacency)
        self.a_hat_t: CSRMatrix = self.a_hat.transpose()
        self._row_nnz = self.a_hat_t.row_nnz().astype(np.int64)
        n = dataset.n
        adj = dataset.adjacency
        self.degrees = (
            np.bincount(adj.rows, minlength=n)
            + np.bincount(adj.cols, minlength=n)
        ).astype(np.int64)

        # 1D shard placement: contiguous uniform ranges, as in training;
        # owner_of is the *live* routing table, rewritten on degrade.
        self.partition = uniform_partition(n, config.num_gpus)
        self._owner_of = self.partition.owners(np.arange(n, dtype=np.int64))
        self._alive: List[int] = list(range(config.num_gpus))

        #: optional shared :class:`repro.telemetry.Telemetry` hub — batch
        #: and warm spans plus ``repro_serving_*`` instruments report
        #: through it alongside training/replay/recovery.
        self.telemetry = telemetry
        self.ctx = SimContext(
            config.machine,
            num_gpus=config.num_gpus,
            mode=Mode.FUNCTIONAL,
            record_trace=config.record_trace,
            telemetry=telemetry,
            kernel_backend=config.kernel_backend,
        )
        self.cost = CostModel(config.machine.gpu)
        self.cache = EmbeddingCache(
            config.cache_entries,
            pinned=pin_by_degree(self.degrees, config.num_pinned),
        )
        self.metrics = ServingMetrics(
            registry=telemetry.registry if telemetry is not None else None
        )
        #: optional :class:`~repro.telemetry.slo.SLOMonitor` — burn
        #: rates update per served batch; a rising-edge breach dumps a
        #: flight-recorder postmortem when the hub carries a recorder.
        self.slo = slo
        if slo is not None:
            if telemetry is not None and slo.registry is None:
                slo.registry = telemetry.registry
            if getattr(telemetry, "flight", None) is not None:
                slo.on_breach(self._dump_on_breach)
        # deltas for hit-rate SLO accounting (cache stats are cumulative).
        self._slo_last_lookups = 0
        self._slo_last_hits = 0
        #: first degrade time; None while the full world is alive.
        self._degraded_since: Optional[float] = None
        self._warm_plan: Optional[ExecutionPlan] = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_checkpoint(
        cls,
        dataset: Dataset,
        path,
        config: Optional[ServingConfig] = None,
        telemetry=None,
    ) -> "ServingEngine":
        """Restore a serving engine from a checksummed checkpoint file."""
        weights, spec = load_weights(path)
        return cls(dataset, weights, spec, config=config, telemetry=telemetry)

    # -- model management -----------------------------------------------------

    def update_weights(self, weights: Sequence[np.ndarray]) -> int:
        """Swap in new weights; returns the new model version.

        Cached embeddings of the old version become stale lazily (the
        cache drops them on touch); the warm plan stays valid because
        its compute closure reads the live weights — replaying it
        re-warms under the new version with the captured schedule.
        """
        if len(weights) != self.spec.num_layers:
            raise ConfigurationError(
                f"{len(weights)} weight arrays for {self.spec.num_layers} "
                f"layers"
            )
        staged = [np.asarray(w, dtype=FLOAT_DTYPE) for w in weights]
        for l, w in enumerate(staged):
            if w.shape != self.spec.dims_of(l):
                raise ConfigurationError(
                    f"weight {l} shape {w.shape} != spec {self.spec.dims_of(l)}"
                )
        self.weights = staged
        self.model_version += 1
        return self.model_version

    def reload(self, path) -> int:
        """Hot-swap weights from a checkpoint (architecture must match)."""
        weights, spec = load_weights(path)
        if spec.layer_dims != self.spec.layer_dims:
            raise ConfigurationError(
                f"checkpoint architecture {spec.layer_dims} != serving "
                f"{self.spec.layer_dims}"
            )
        return self.update_weights(weights)

    # -- shard liveness -------------------------------------------------------

    @property
    def alive_ranks(self) -> Tuple[int, ...]:
        return tuple(self._alive)

    def _apply_faults(self, time: float) -> None:
        """Degrade for every device failure at or before ``time``."""
        for rank in self.config.fault_plan.failed_ranks_before(time):
            if rank in self._alive:
                self._degrade(rank, time)

    def _degrade(self, rank: int, time: float) -> None:
        """Lose ``rank``: reroute its vertices, drop its cache partition."""
        survivors = [r for r in self._alive if r != rank]
        if not survivors:
            raise RecoveryError(
                f"device failure on rank {rank} leaves no survivors"
            )
        self._alive = survivors
        lost = np.nonzero(self._owner_of == rank)[0]
        # round-robin the orphaned shard over the survivors: keeps the
        # rerouted load balanced without re-partitioning live vertices.
        self._owner_of[lost] = np.asarray(survivors, dtype=np.int64)[
            np.arange(lost.size) % len(survivors)
        ]
        invalidated = self.cache.invalidate_vertices(lost)
        # the captured warm schedule submits ops on the dead device.
        self._warm_plan = None
        if self._degraded_since is None:
            self._degraded_since = time
        flight_note = getattr(self.telemetry, "flight_note", None)
        if flight_note is not None:
            flight_note(
                "degrade",
                time=time,
                rank=rank,
                rerouted=int(lost.size),
                invalidated=invalidated,
                survivors=len(survivors),
            )
        self.metrics.observe_degrade(
            DegradeEvent(
                rank=rank,
                time=time,
                rerouted_vertices=int(lost.size),
                invalidated_entries=invalidated,
            )
        )

    # -- partial forward (functional) ----------------------------------------

    def _sub_csr(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, CSRMatrix]:
        """``A_hat^T`` restricted to ``rows``, columns compacted.

        Returns ``(need, sub)`` where ``need`` is the sorted unique set
        of in-neighbors referenced by ``rows`` and ``sub`` is the
        ``(len(rows), len(need))`` CSR with columns remapped into
        ``need`` positions. Within each row the column order (and hence
        the accumulation order of the SpMM) is unchanged from the full
        matrix.
        """
        indptr = self.a_hat_t.indptr
        starts = indptr[rows].astype(np.int64)
        lens = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
        total = int(lens.sum())
        offsets = np.cumsum(lens) - lens
        flat = np.repeat(starts, lens) + (
            np.arange(total, dtype=np.int64) - np.repeat(offsets, lens)
        )
        cols = self.a_hat_t.indices[flat]
        need = np.unique(cols).astype(np.int64)
        sub = CSRMatrix(
            (rows.size, need.size),
            np.concatenate(([0], np.cumsum(lens))),
            np.searchsorted(need, cols),
            self.a_hat_t.vals[flat],
            validate=False,
        )
        return need, sub

    def _embeddings_at(
        self,
        layer: int,
        vertices: np.ndarray,
        work_log: Optional[List[_LayerWork]] = None,
    ) -> np.ndarray:
        """Rows ``H^(layer)[vertices]`` (``layer`` 0 = input features).

        ``vertices`` must be sorted unique int64. Recurses top-down
        through the cache: misses at ``layer`` expand to their in-edge
        neighborhood at ``layer - 1``, hits truncate. Freshly computed
        rows are cached; ``work_log`` collects per-layer recompute
        volumes for the timing model.
        """
        if layer == 0:
            return self.dataset.features[vertices]
        hit_ids, miss_ids, hit_rows = self.cache.lookup(
            layer, vertices, self.model_version
        )
        d_out = self.spec.layer_dims[layer]
        out = np.empty((vertices.size, d_out), dtype=FLOAT_DTYPE)
        if hit_ids.size:
            out[np.searchsorted(vertices, hit_ids)] = hit_rows
        if miss_ids.size:
            backend = self.ctx.engine.backend
            need, sub = self._sub_csr(miss_ids)
            prev = self._embeddings_at(layer - 1, need, work_log)
            w = self.weights[layer - 1]
            if 0 < prev.shape[0] < _GEMM_PAD_ROWS:
                padded = np.zeros(
                    (_GEMM_PAD_ROWS, prev.shape[1]), dtype=FLOAT_DTYPE
                )
                padded[: prev.shape[0]] = prev
                hw_full = np.empty(
                    (_GEMM_PAD_ROWS, w.shape[1]), dtype=FLOAT_DTYPE
                )
                backend.gemm(padded, w, hw_full)
                hw = hw_full[: prev.shape[0]]
            else:
                hw = np.empty((prev.shape[0], w.shape[1]), dtype=FLOAT_DTYPE)
                backend.gemm(prev, w, hw)
            fresh = np.empty((sub.shape[0], hw.shape[1]), dtype=hw.dtype)
            backend.spmm(sub, hw, fresh, accumulate=False)
            if layer < self.spec.num_layers:
                backend.relu(fresh)
            fresh = fresh.astype(FLOAT_DTYPE, copy=False)
            out[np.searchsorted(vertices, miss_ids)] = fresh
            self.cache.insert(layer, miss_ids, fresh, self.model_version)
            if work_log is not None:
                work_log.append(
                    _LayerWork(
                        layer=layer,
                        miss_ids=miss_ids,
                        need_size=int(need.size),
                        nnz=int(self._row_nnz[miss_ids].sum()),
                        d_in=int(self.spec.layer_dims[layer - 1]),
                        d_out=int(d_out),
                    )
                )
        return out

    def query(self, vertices: Sequence[int]) -> np.ndarray:
        """Logits for ``vertices`` (functional only; no simulated time).

        The correctness entry point: returns exactly what :meth:`serve`
        would hand the request owning these vertices, using (and
        filling) the cache, without advancing the engine clock.
        """
        targets = np.asarray(list(vertices), dtype=np.int64)
        if targets.size == 0:
            raise ConfigurationError("query: empty vertex list")
        if targets.min() < 0 or targets.max() >= self.dataset.n:
            raise ConfigurationError(
                f"query: vertex out of range [0, {self.dataset.n})"
            )
        uniq = np.unique(targets)
        rows = self._embeddings_at(self.spec.num_layers, uniq)
        return rows[np.searchsorted(uniq, targets)]

    # -- timing ---------------------------------------------------------------

    def _alive_streams(self):
        out = []
        for rank in self._alive:
            device = self.ctx.device(rank)
            out.append(device.compute_stream)
            out.append(device.comm_stream)
        return out

    def _submit_layer_ops(
        self,
        work: _LayerWork,
        correlation: Optional[str],
        compute=None,
    ) -> None:
        """Timed per-rank ops for one layer's recompute volume.

        Each alive rank computes the miss rows it owns: a gather of the
        remote slice of the frontier over its injection link, the
        ``H W`` GeMM over the frontier rows, and the sub-CSR SpMM over
        its share of the nonzeros. ``compute`` (the functional closure,
        already executed) is attached to the first submitted op so a
        capture replays the numerics exactly once.
        """
        engine = self.ctx.engine
        owners = self._owner_of[work.miss_ids]
        num_ranks = self.config.num_gpus
        rows_per_rank = np.bincount(owners, minlength=num_ranks)
        nnz_per_rank = np.bincount(
            owners, weights=self._row_nnz[work.miss_ids], minlength=num_ranks
        )
        machine = self.config.machine
        alive = len(self._alive)
        for rank in self._alive:
            rows_r = int(rows_per_rank[rank])
            if rows_r == 0:
                continue
            device = self.ctx.device(rank)
            # frontier slice this rank must pull from its peers: all but
            # its (uniform) share of the need set lives remotely.
            remote_rows = work.need_size - work.need_size // alive
            gather_bytes = remote_rows * work.d_in * _ITEMSIZE
            gather_ev = engine.submit(
                device.comm_stream,
                f"serve.gather.l{work.layer}",
                "comm",
                gather_bytes / machine.injection_bandwidth(rank)
                + _LINK_LATENCY,
                nbytes=int(gather_bytes),
                compute=compute,
                correlation=correlation,
            )
            compute = None  # the closure is recorded on exactly one op
            gemm_ev = engine.submit(
                device.compute_stream,
                f"serve.gemm.l{work.layer}",
                "gemm",
                self.cost.gemm_time(work.need_size, work.d_out, work.d_in),
                correlation=correlation,
                flops=2.0 * work.need_size * work.d_out * work.d_in,
            )
            engine.submit(
                device.compute_stream,
                f"serve.spmm.l{work.layer}",
                "spmm",
                self.cost.spmm_time(
                    rows_r, int(nnz_per_rank[rank]), work.d_out,
                    dense_rows=work.need_size,
                ),
                deps=(gather_ev, gemm_ev),
                correlation=correlation,
                flops=2.0 * float(nnz_per_rank[rank]) * work.d_out,
            )
        if compute is not None:
            # every rank's shard of this layer was fully cached (or all
            # owners are degraded targets with zero rows); the closure
            # still needs a carrier op for capture fidelity.
            device = self.ctx.device(self._alive[0])
            engine.submit(
                device.compute_stream,
                f"serve.noop.l{work.layer}",
                "activation",
                self.cost.elementwise_time(1),
                compute=compute,
                correlation=correlation,
            )

    def _execute_batch(self, batch: MicroBatch) -> Dict[int, np.ndarray]:
        """Run one micro-batch: functional logits + simulated timing."""
        streams = self._alive_streams()
        for s in streams:
            s.ready_time = max(s.ready_time, batch.dispatch_time)
        correlation = f"batch-{batch.batch_id}"
        uniq = np.unique(np.asarray(batch.vertices, dtype=np.int64))
        if uniq.min() < 0 or uniq.max() >= self.dataset.n:
            raise ConfigurationError(
                f"batch {batch.batch_id}: vertex out of range "
                f"[0, {self.dataset.n})"
            )
        work_log: List[_LayerWork] = []
        rows = self._embeddings_at(self.spec.num_layers, uniq, work_log)
        # deepest layer first: the recursion appends top-down, the
        # timeline runs bottom-up.
        for work in reversed(work_log):
            self._submit_layer_ops(work, correlation)
        # readout: even an all-hit batch spends time streaming the cached
        # logits out, so service time is never exactly zero.
        engine = self.ctx.engine
        target_owners = np.bincount(
            self._owner_of[uniq], minlength=self.config.num_gpus
        )
        for rank in self._alive:
            count = int(target_owners[rank])
            if count == 0:
                continue
            device = self.ctx.device(rank)
            engine.submit(
                device.compute_stream,
                "serve.readout",
                "activation",
                self.cost.elementwise_time(count * self.spec.layer_dims[-1]),
                correlation=correlation,
                flops=float(count * self.spec.layer_dims[-1]),
            )
        out: Dict[int, np.ndarray] = {}
        for request in batch.requests:
            targets = np.asarray(request.vertices, dtype=np.int64)
            out[request.request_id] = rows[np.searchsorted(uniq, targets)]
        return out

    # -- cache warming --------------------------------------------------------

    def _functional_warm(self) -> float:
        """Full-batch forward filling the cache at the live version.

        Insertion order is degree-ascending within each layer and the
        output layer goes last, so under LRU pressure the cache retains
        the hottest vertices at the shallowest-recompute (topmost)
        layers. Returns 0.0 (closure convention: replayable, no loss).
        """
        order = np.argsort(self.degrees, kind="stable").astype(np.int64)
        backend = self.ctx.engine.backend
        h = self.dataset.features
        L = self.spec.num_layers
        for l, w in enumerate(self.weights):
            hw = np.empty((h.shape[0], w.shape[1]), dtype=FLOAT_DTYPE)
            backend.gemm(np.asarray(h, dtype=FLOAT_DTYPE), w, hw)
            ahw = np.empty((self.a_hat_t.shape[0], hw.shape[1]), dtype=hw.dtype)
            backend.spmm(self.a_hat_t, hw, ahw, accumulate=False)
            if l < L - 1:
                backend.relu(ahw)
            h = ahw
            self.cache.insert(l + 1, order, h[order], self.model_version)
        return 0.0

    def _submit_warm_ops(self, compute) -> None:
        """Timed full-batch forward ops (one GeMM/bcast/SpMM per rank/layer)."""
        engine = self.ctx.engine
        machine = self.config.machine
        n = self.dataset.n
        rows_per_rank = np.bincount(
            self._owner_of, minlength=self.config.num_gpus
        )
        nnz_per_rank = np.bincount(
            self._owner_of, weights=self._row_nnz,
            minlength=self.config.num_gpus,
        )
        for l in range(self.spec.num_layers):
            d_in = self.spec.layer_dims[l]
            d_out = self.spec.layer_dims[l + 1]
            for rank in self._alive:
                rows_r = int(rows_per_rank[rank])
                if rows_r == 0:
                    continue
                device = self.ctx.device(rank)
                gemm_ev = engine.submit(
                    device.compute_stream,
                    f"warm.gemm.l{l}",
                    "gemm",
                    self.cost.gemm_time(rows_r, d_out, d_in),
                    compute=compute,
                    correlation="warm",
                    flops=2.0 * rows_r * d_out * d_in,
                )
                compute = None
                nbytes = rows_r * d_out * _ITEMSIZE
                bcast_ev = engine.submit(
                    device.comm_stream,
                    f"warm.bcast.l{l}",
                    "comm",
                    nbytes / machine.injection_bandwidth(rank)
                    + _LINK_LATENCY,
                    deps=(gemm_ev,),
                    nbytes=int(nbytes),
                    correlation="warm",
                )
                engine.submit(
                    device.compute_stream,
                    f"warm.spmm.l{l}",
                    "spmm",
                    self.cost.spmm_time(
                        rows_r, int(nnz_per_rank[rank]), d_out, dense_rows=n
                    ),
                    deps=(bcast_ev,),
                    correlation="warm",
                    flops=2.0 * float(nnz_per_rank[rank]) * d_out,
                )

    def warm_cache(self) -> float:
        """Fill the cache with a full-batch forward; returns its end time.

        The first warm runs eagerly under a :class:`PlanCapture`; later
        warms (after :meth:`update_weights` / :meth:`reload`) replay the
        captured :class:`ExecutionPlan` — the closure recomputes the
        embeddings under the live weights and version, the schedule is
        reused verbatim. Degrading drops the plan (its ops target the
        dead device), so the next warm re-captures over the survivors.
        """
        if self.cache.capacity == 0:
            raise ConfigurationError(
                "warm_cache() on a disabled cache (cache_entries=0)"
            )
        engine = self.ctx.engine
        streams = self._alive_streams()
        t0 = engine.barrier(streams)
        telemetry = self.telemetry
        span = None
        if telemetry is not None:
            span = telemetry.tracer.begin(
                "serve.warm", t0, correlation="warm", category="serving"
            )
        try:
            if self._warm_plan is not None:
                result = self._warm_plan.replay(engine, t0)
                for s in streams:
                    s.ready_time = max(s.ready_time, result.end_time)
                end = result.end_time
            else:
                capture = PlanCapture(engine)
                capture.begin()
                try:
                    self._functional_warm()
                    self._submit_warm_ops(self._functional_warm)
                finally:
                    capture.end()
                self._warm_plan = capture.finalize()
                end = engine.barrier(streams)
        finally:
            if span is not None:
                telemetry.tracer.end(span, engine.now(streams))
        if telemetry is not None:
            telemetry.inc("repro_serving_warms_total")
        return end

    # -- SLO accounting -------------------------------------------------------

    def _dump_on_breach(self, breach) -> None:
        """Flight-recorder hook: freeze a postmortem at the breach."""
        dump = getattr(self.telemetry, "dump_postmortem", None)
        if dump is not None:
            dump(
                "slo_breach",
                time=breach.time,
                slo=breach.slo,
                burn_rates=list(breach.burn_rates),
            )

    def _observe_slo(self, batch, completion: float) -> None:
        """Feed one served batch into the attached SLO monitor."""
        slo = self.slo
        if slo is None:
            return
        if "serving_latency" in slo:
            for req in batch.requests:
                slo.observe(
                    "serving_latency", completion - req.arrival, completion
                )
        if "serving_hit_rate" in slo:
            stats = self.cache.stats
            lookups = stats.lookups - self._slo_last_lookups
            hits = stats.hits - self._slo_last_hits
            self._slo_last_lookups = stats.lookups
            self._slo_last_hits = stats.hits
            slo.observe_outcomes(
                "serving_hit_rate",
                completion,
                bad=lookups - hits,
                total=lookups,
            )
        if "serving_degraded" in slo:
            degraded = len(self._alive) < self.config.num_gpus
            slo.observe(
                "serving_degraded", 1.0 if degraded else 0.0, completion
            )

    # -- the serving loop -----------------------------------------------------

    def serve(
        self, requests: Sequence[InferenceRequest]
    ) -> ServingResult:
        """Serve a request stream to completion; returns logits + SLOs.

        Drives the :class:`MicroBatcher` pull loop with a single
        in-flight execution slot: each batch's completion time is the
        next batch's earliest dispatch. Device failures from the fault
        plan are applied at dispatch boundaries — the first batch whose
        dispatch lies past a failure time triggers degraded mode before
        it executes.
        """
        if not requests:
            raise ConfigurationError("serve: empty request stream")
        batcher = MicroBatcher(
            requests, self.config.max_batch_size, self.config.max_wait
        )
        engine = self.ctx.engine
        server_free = engine.now(self._alive_streams())
        logits: Dict[int, np.ndarray] = {}
        telemetry = self.telemetry
        if telemetry is not None:
            set_section = getattr(telemetry, "set_flight_section", None)
            if set_section is not None:
                set_section("serve")
        while (batch := batcher.next_batch(server_free)) is not None:
            self._apply_faults(batch.dispatch_time)
            span = None
            if telemetry is not None:
                span = telemetry.tracer.begin(
                    f"serve.batch-{batch.batch_id}",
                    batch.dispatch_time,
                    correlation=f"batch-{batch.batch_id}",
                    category="serving",
                    batch_size=batch.size,
                )
            try:
                logits.update(self._execute_batch(batch))
                completion = engine.barrier(self._alive_streams())
            finally:
                if span is not None:
                    telemetry.tracer.end(span, engine.now(self._alive_streams()))
            self.metrics.observe_batch(batch, completion)
            self._observe_slo(batch, completion)
            if telemetry is not None and self._degraded_since is not None:
                telemetry.set_gauge(
                    "repro_serving_degraded_seconds",
                    completion - self._degraded_since,
                )
            server_free = completion
        return ServingResult(
            logits=logits,
            summary=self.metrics.summary(cache_stats=self.cache.stats),
        )
