"""Seeded inference-request generators (arrival processes + targets).

A serving benchmark needs a *closed-form* workload: the same seed must
produce the same request stream so latency distributions are exactly
reproducible across runs and across cold/warm cache comparisons. Two
arrival processes cover the regimes GNN serving papers evaluate:

* :func:`poisson_workload` — memoryless arrivals at a target rate, the
  steady-traffic baseline;
* :func:`bursty_workload` — Poisson-arriving *bursts* of back-to-back
  requests, the flash-crowd pattern that stresses the micro-batcher's
  admission queue.

Query targets are drawn with
:func:`repro.datasets.loader.sample_query_vertices`: uniform, or
Zipf-skewed toward high-degree vertices (hot products, hub accounts) —
the access pattern the cache's degree-aware pinning exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.datasets.loader import Dataset, sample_query_vertices
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator, split_generator


@dataclass(frozen=True)
class InferenceRequest:
    """One classification query: score these vertices under the live model."""

    request_id: int
    #: target vertex ids (>= 1; a request may score several vertices).
    vertices: Tuple[int, ...]
    #: simulated arrival time, seconds.
    arrival: float

    def __post_init__(self) -> None:
        if not self.vertices:
            raise ConfigurationError(
                f"request {self.request_id}: empty vertex list"
            )
        if self.arrival < 0:
            raise ConfigurationError(
                f"request {self.request_id}: negative arrival {self.arrival}"
            )
        object.__setattr__(
            self, "vertices", tuple(int(v) for v in self.vertices)
        )

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)


def _build_requests(
    dataset: Dataset,
    arrivals: np.ndarray,
    vertices_per_request: int,
    skew: float,
    target_rng: np.random.Generator,
    first_id: int,
) -> List[InferenceRequest]:
    n = arrivals.size
    targets = sample_query_vertices(
        dataset, n * vertices_per_request, skew=skew, seed=target_rng
    ).reshape(n, vertices_per_request)
    return [
        InferenceRequest(
            request_id=first_id + i,
            vertices=tuple(int(v) for v in targets[i]),
            arrival=float(arrivals[i]),
        )
        for i in range(n)
    ]


def poisson_workload(
    dataset: Dataset,
    num_requests: int,
    rate: float,
    skew: float = 0.0,
    vertices_per_request: int = 1,
    start: float = 0.0,
    seed: SeedLike = None,
) -> List[InferenceRequest]:
    """``num_requests`` requests with exponential inter-arrival gaps.

    ``rate`` is the mean arrival rate in requests per simulated second.
    Returned sorted by arrival time, ids dense from 0.
    """
    if num_requests < 0:
        raise ConfigurationError(f"num_requests must be >= 0, got {num_requests}")
    if rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {rate}")
    if vertices_per_request < 1:
        raise ConfigurationError(
            f"vertices_per_request must be >= 1, got {vertices_per_request}"
        )
    if start < 0:
        raise ConfigurationError(f"start must be >= 0, got {start}")
    rng = as_generator(seed)
    arrival_rng, target_rng = split_generator(rng, 2)
    gaps = arrival_rng.exponential(1.0 / rate, size=num_requests)
    arrivals = start + np.cumsum(gaps)
    return _build_requests(
        dataset, arrivals, vertices_per_request, skew, target_rng, first_id=0
    )


def bursty_workload(
    dataset: Dataset,
    num_bursts: int,
    burst_size: int,
    burst_rate: float,
    intra_burst_gap: float = 1e-5,
    skew: float = 0.0,
    vertices_per_request: int = 1,
    start: float = 0.0,
    seed: SeedLike = None,
) -> List[InferenceRequest]:
    """Poisson-arriving bursts of ``burst_size`` back-to-back requests.

    Burst *starts* arrive at ``burst_rate`` per second; requests inside
    a burst are ``intra_burst_gap`` seconds apart — effectively
    simultaneous relative to the batcher's ``max_wait``, which is the
    point: a burst should coalesce into one (or few) micro-batches.
    """
    if num_bursts < 0:
        raise ConfigurationError(f"num_bursts must be >= 0, got {num_bursts}")
    if burst_size < 1:
        raise ConfigurationError(f"burst_size must be >= 1, got {burst_size}")
    if burst_rate <= 0:
        raise ConfigurationError(f"burst rate must be positive, got {burst_rate}")
    if intra_burst_gap < 0:
        raise ConfigurationError(
            f"intra_burst_gap must be >= 0, got {intra_burst_gap}"
        )
    if vertices_per_request < 1:
        raise ConfigurationError(
            f"vertices_per_request must be >= 1, got {vertices_per_request}"
        )
    if start < 0:
        raise ConfigurationError(f"start must be >= 0, got {start}")
    rng = as_generator(seed)
    arrival_rng, target_rng = split_generator(rng, 2)
    burst_gaps = arrival_rng.exponential(1.0 / burst_rate, size=num_bursts)
    burst_starts = start + np.cumsum(burst_gaps)
    offsets = np.arange(burst_size) * intra_burst_gap
    arrivals = (burst_starts[:, None] + offsets[None, :]).reshape(-1)
    # bursts can interleave when a gap is shorter than a burst's span;
    # requests must still be emitted in arrival order for the batcher.
    arrivals = np.sort(arrivals, kind="stable")
    return _build_requests(
        dataset, arrivals, vertices_per_request, skew, target_rng, first_id=0
    )
