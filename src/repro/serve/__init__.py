"""Online GCN inference serving on the virtual-GPU engine.

The training side of this repository reproduces MG-GCN's full-batch
multi-GPU training; this package is the deployment story for the models
it produces: restore weights from a checkpoint, shard the graph with the
same 1D partitioner, and answer vertex-classification queries online —
micro-batched, embedding-cached, SLO-measured, and fault-degradable.
"""

from repro.serve.batcher import MicroBatch, MicroBatcher
from repro.cache.lru import CacheStats, EmbeddingCache, pin_by_degree
from repro.serve.metrics import (
    DegradeEvent,
    RequestRecord,
    ServingMetrics,
    latency_percentile,
)
from repro.serve.server import ServingConfig, ServingEngine, ServingResult
from repro.serve.workload import (
    InferenceRequest,
    bursty_workload,
    poisson_workload,
)

__all__ = [
    "CacheStats",
    "DegradeEvent",
    "EmbeddingCache",
    "InferenceRequest",
    "MicroBatch",
    "MicroBatcher",
    "RequestRecord",
    "ServingConfig",
    "ServingEngine",
    "ServingMetrics",
    "ServingResult",
    "bursty_workload",
    "latency_percentile",
    "pin_by_degree",
    "poisson_workload",
]
