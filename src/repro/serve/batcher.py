"""Admission queue with micro-batching (max-size / max-wait coalescing).

The serving engine answers queries with a *partial* multi-stage SpMM
pass; one pass over ``B`` coalesced requests shares the frontier
gather, the ``HW`` GeMM and the kernel-launch overheads across all of
them, so batching trades a bounded queueing delay for throughput —
exactly the knob every production model server exposes.

Dispatch rule (deterministic, simulated-clock driven): a batch leaves
the queue at

``max(server_free, min(first_arrival + max_wait, t_full))``

where ``t_full`` is the arrival of the ``max_batch_size``-th queued
request (a full batch never waits) and the outer ``max`` models the
single in-flight execution slot — while the engine is busy, arrivals
pile up and drain as larger batches, which is how the system degrades
gracefully under overload instead of falling behind per-request.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.serve.workload import InferenceRequest


@dataclass(frozen=True)
class MicroBatch:
    """One admitted batch, ready for a single partial-SpMM pass."""

    batch_id: int
    requests: Tuple[InferenceRequest, ...]
    #: simulated time the batch starts executing.
    dispatch_time: float
    #: arrived-but-unserved requests at dispatch (this batch included) —
    #: the queue-depth sample the SLO metrics aggregate.
    queue_depth: int

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def vertices(self) -> Tuple[int, ...]:
        """Concatenated target vertices of every request (with repeats)."""
        return tuple(v for r in self.requests for v in r.vertices)


class MicroBatcher:
    """Deterministic micro-batch former over a fixed request stream.

    The server drives it as a pull loop::

        while (batch := batcher.next_batch(server_free)) is not None:
            server_free = execute(batch)

    ``server_free`` feeds back the engine's completion time, so batch
    sizes respond to service latency: slow batches widen the admission
    window of the next one.
    """

    def __init__(
        self,
        requests: Sequence[InferenceRequest],
        max_batch_size: int,
        max_wait: float,
    ):
        if max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if max_wait < 0:
            raise ConfigurationError(f"max_wait must be >= 0, got {max_wait}")
        self.max_batch_size = int(max_batch_size)
        self.max_wait = float(max_wait)
        self._requests: List[InferenceRequest] = sorted(
            requests, key=lambda r: (r.arrival, r.request_id)
        )
        self._cursor = 0
        self._next_batch_id = 0

    @property
    def pending(self) -> int:
        """Requests not yet handed out."""
        return len(self._requests) - self._cursor

    def next_batch(self, server_free: float) -> Optional[MicroBatch]:
        """Form the next batch given the engine frees up at ``server_free``."""
        if self._cursor >= len(self._requests):
            return None
        requests = self._requests
        i = self._cursor
        first_arrival = requests[i].arrival
        full_index = i + self.max_batch_size - 1
        t_full = (
            requests[full_index].arrival
            if full_index < len(requests)
            else math.inf
        )
        dispatch = max(
            server_free,
            first_arrival,
            min(first_arrival + self.max_wait, t_full),
        )
        # everything that has arrived by the dispatch instant is queued;
        # the batch takes the oldest max_batch_size of them.
        arrived_end = i
        while (
            arrived_end < len(requests)
            and requests[arrived_end].arrival <= dispatch
        ):
            arrived_end += 1
        take = min(arrived_end - i, self.max_batch_size)
        batch = MicroBatch(
            batch_id=self._next_batch_id,
            requests=tuple(requests[i : i + take]),
            dispatch_time=dispatch,
            queue_depth=arrived_end - i,
        )
        self._cursor = i + take
        self._next_batch_id += 1
        return batch
