"""Compatibility shim: the serving cache core lives in :mod:`repro.cache`.

The LRU/degree-pinning machinery started here and was lifted into the
shared :mod:`repro.cache` package so the training-time remote-embedding
cache (:mod:`repro.cache.training`) reuses it instead of duplicating
eviction and degree-ranking logic. Import from :mod:`repro.cache` in
new code; this module keeps the historical paths working.
"""

from repro.cache.lru import CacheStats, EmbeddingCache, pin_by_degree

__all__ = ["CacheStats", "EmbeddingCache", "pin_by_degree"]
