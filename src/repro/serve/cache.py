"""Deprecated compatibility shim: use :mod:`repro.cache.lru`.

The LRU/degree-pinning machinery started here and was lifted into the
shared :mod:`repro.cache` package so the training-time remote-embedding
cache (:mod:`repro.cache.training`) reuses it instead of duplicating
eviction and degree-ranking logic. Importing this module now emits a
:class:`DeprecationWarning`; it will be removed once external callers
have migrated (no internal code imports it any more).
"""

import warnings

from repro.cache.lru import CacheStats, EmbeddingCache, pin_by_degree

warnings.warn(
    "repro.serve.cache is deprecated; import CacheStats, EmbeddingCache "
    "and pin_by_degree from repro.cache.lru (or repro.cache) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["CacheStats", "EmbeddingCache", "pin_by_degree"]
