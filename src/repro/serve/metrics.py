"""SLO metrics for the serving engine: latency tails, throughput, queues.

Latency percentiles use the *nearest-rank* method (``ceil(q/100 * n)``-th
order statistic) — deterministic, interpolation-free, and the convention
SLO dashboards use (a p99 is an actual observed request, not a blend of
two). The implementation lives in :mod:`repro.telemetry.registry` (one
nearest-rank in the codebase); this module keeps its public names as
thin delegates. All times are simulated seconds; the numbers are exactly
reproducible for a given workload seed.

Pass a :class:`~repro.telemetry.MetricsRegistry` to
:class:`ServingMetrics` and the same observations also land in the
shared telemetry namespace (``repro_serving_*``), so serving shows up in
Prometheus snapshots and the regression gate alongside training.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.telemetry.registry import Histogram, MetricsRegistry, nearest_rank


def latency_percentile(latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile ``q`` (0 < q <= 100) of ``latencies``."""
    if not latencies:
        raise ConfigurationError("percentile of an empty latency set")
    return nearest_rank(sorted(latencies), q)


@dataclass(frozen=True)
class RequestRecord:
    """The lifecycle timestamps of one served request."""

    request_id: int
    arrival: float
    dispatch: float
    completion: float
    batch_id: int
    batch_size: int

    @property
    def latency(self) -> float:
        """End-to-end: arrival -> logits ready (queue wait + service)."""
        return self.completion - self.arrival

    @property
    def queue_wait(self) -> float:
        return self.dispatch - self.arrival

    @property
    def service_time(self) -> float:
        return self.completion - self.dispatch


@dataclass(frozen=True)
class DegradeEvent:
    """One degraded-mode transition (a device shard was lost)."""

    rank: int
    time: float
    rerouted_vertices: int
    invalidated_entries: int


class ServingMetrics:
    """Accumulates per-request records and batch-level queue samples.

    ``registry`` (optional) is a shared
    :class:`~repro.telemetry.MetricsRegistry`: when given, the latency
    histogram is registered there as ``repro_serving_latency_seconds``
    and request/batch/degrade counters accumulate under
    ``repro_serving_*`` — the same instruments every other subsystem
    reports through. Without it, a private histogram keeps the class
    self-contained.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.records: List[RequestRecord] = []
        self.queue_depths: List[int] = []
        self.batch_sizes: List[int] = []
        self.degrade_events: List[DegradeEvent] = []
        self.registry = registry
        # summary() math always runs on this instance's own histogram (a
        # registry may be shared by several ServingMetrics); the shared
        # registry instruments mirror the observations when present.
        self._latency_hist = Histogram()
        if registry is not None:
            self._shared_hist = registry.histogram(
                "repro_serving_latency_seconds",
                "End-to-end request latency (arrival to logits ready)",
            )
            self._requests_total = registry.counter(
                "repro_serving_requests_total", "Requests served"
            )
            self._batches_total = registry.counter(
                "repro_serving_batches_total", "Micro-batches executed"
            )
            self._degrades_total = registry.counter(
                "repro_serving_degrades_total", "Degraded-mode transitions"
            )
        else:
            self._shared_hist = None
            self._requests_total = None
            self._batches_total = None
            self._degrades_total = None

    def observe_batch(
        self,
        batch,
        completion: float,
    ) -> None:
        """Record one executed :class:`~repro.serve.batcher.MicroBatch`."""
        if completion < batch.dispatch_time:
            raise ConfigurationError(
                f"batch {batch.batch_id}: completion {completion} before "
                f"dispatch {batch.dispatch_time}"
            )
        self.queue_depths.append(batch.queue_depth)
        self.batch_sizes.append(batch.size)
        if self._batches_total is not None:
            self._batches_total.inc()
        for request in batch.requests:
            record = RequestRecord(
                request_id=request.request_id,
                arrival=request.arrival,
                dispatch=batch.dispatch_time,
                completion=completion,
                batch_id=batch.batch_id,
                batch_size=batch.size,
            )
            self.records.append(record)
            self._latency_hist.observe(record.latency)
            if self._shared_hist is not None:
                self._shared_hist.observe(record.latency)
            if self._requests_total is not None:
                self._requests_total.inc()
        if self.registry is not None:
            self.registry.gauge(
                "repro_serving_queue_depth", "Queue depth at last dispatch"
            ).set(batch.queue_depth)

    def observe_degrade(self, event: DegradeEvent) -> None:
        self.degrade_events.append(event)
        if self._degrades_total is not None:
            self._degrades_total.inc()

    # -- aggregation ----------------------------------------------------------

    @property
    def num_requests(self) -> int:
        return len(self.records)

    def latencies(self) -> List[float]:
        return [r.latency for r in self.records]

    def summary(self, cache_stats=None) -> Dict[str, float]:
        """The SLO scoreboard: tails, throughput, queues, cache efficacy.

        ``cache_stats`` is an optional
        :class:`~repro.cache.lru.CacheStats` whose hit rate is folded
        into the report (the engine passes its cache's).
        """
        if not self.records:
            raise ConfigurationError("summary() before any request was served")
        hist = self._latency_hist
        first_arrival = min(r.arrival for r in self.records)
        last_completion = max(r.completion for r in self.records)
        makespan = last_completion - first_arrival
        out: Dict[str, float] = {
            "num_requests": float(len(self.records)),
            "num_batches": float(len(self.batch_sizes)),
            "makespan": makespan,
            "throughput_rps": (
                len(self.records) / makespan if makespan > 0 else math.inf
            ),
            "latency_mean": hist.sum / len(self.records),
            "latency_p50": hist.percentile(50),
            "latency_p95": hist.percentile(95),
            "latency_p99": hist.percentile(99),
            "latency_max": hist.max,
            "queue_wait_mean": (
                sum(r.queue_wait for r in self.records) / len(self.records)
            ),
            "mean_batch_size": (
                sum(self.batch_sizes) / len(self.batch_sizes)
            ),
            "mean_queue_depth": (
                sum(self.queue_depths) / len(self.queue_depths)
            ),
            "max_queue_depth": float(max(self.queue_depths)),
            "degrade_events": float(len(self.degrade_events)),
        }
        if cache_stats is not None:
            out["cache_hit_rate"] = cache_stats.hit_rate
            out["cache_evictions"] = float(cache_stats.evictions)
        return out
