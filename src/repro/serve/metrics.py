"""SLO metrics for the serving engine: latency tails, throughput, queues.

Latency percentiles use the *nearest-rank* method (``ceil(q/100 * n)``-th
order statistic) — deterministic, interpolation-free, and the convention
SLO dashboards use (a p99 is an actual observed request, not a blend of
two). All times are simulated seconds; the numbers are exactly
reproducible for a given workload seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError


def latency_percentile(latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile ``q`` (0 < q <= 100) of ``latencies``."""
    if not latencies:
        raise ConfigurationError("percentile of an empty latency set")
    if not (0.0 < q <= 100.0):
        raise ConfigurationError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(latencies)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class RequestRecord:
    """The lifecycle timestamps of one served request."""

    request_id: int
    arrival: float
    dispatch: float
    completion: float
    batch_id: int
    batch_size: int

    @property
    def latency(self) -> float:
        """End-to-end: arrival -> logits ready (queue wait + service)."""
        return self.completion - self.arrival

    @property
    def queue_wait(self) -> float:
        return self.dispatch - self.arrival

    @property
    def service_time(self) -> float:
        return self.completion - self.dispatch


@dataclass(frozen=True)
class DegradeEvent:
    """One degraded-mode transition (a device shard was lost)."""

    rank: int
    time: float
    rerouted_vertices: int
    invalidated_entries: int


class ServingMetrics:
    """Accumulates per-request records and batch-level queue samples."""

    def __init__(self) -> None:
        self.records: List[RequestRecord] = []
        self.queue_depths: List[int] = []
        self.batch_sizes: List[int] = []
        self.degrade_events: List[DegradeEvent] = []

    def observe_batch(
        self,
        batch,
        completion: float,
    ) -> None:
        """Record one executed :class:`~repro.serve.batcher.MicroBatch`."""
        if completion < batch.dispatch_time:
            raise ConfigurationError(
                f"batch {batch.batch_id}: completion {completion} before "
                f"dispatch {batch.dispatch_time}"
            )
        self.queue_depths.append(batch.queue_depth)
        self.batch_sizes.append(batch.size)
        for request in batch.requests:
            self.records.append(
                RequestRecord(
                    request_id=request.request_id,
                    arrival=request.arrival,
                    dispatch=batch.dispatch_time,
                    completion=completion,
                    batch_id=batch.batch_id,
                    batch_size=batch.size,
                )
            )

    def observe_degrade(self, event: DegradeEvent) -> None:
        self.degrade_events.append(event)

    # -- aggregation ----------------------------------------------------------

    @property
    def num_requests(self) -> int:
        return len(self.records)

    def latencies(self) -> List[float]:
        return [r.latency for r in self.records]

    def summary(self, cache_stats=None) -> Dict[str, float]:
        """The SLO scoreboard: tails, throughput, queues, cache efficacy.

        ``cache_stats`` is an optional
        :class:`~repro.serve.cache.CacheStats` whose hit rate is folded
        into the report (the engine passes its cache's).
        """
        if not self.records:
            raise ConfigurationError("summary() before any request was served")
        latencies = self.latencies()
        first_arrival = min(r.arrival for r in self.records)
        last_completion = max(r.completion for r in self.records)
        makespan = last_completion - first_arrival
        out: Dict[str, float] = {
            "num_requests": float(len(self.records)),
            "num_batches": float(len(self.batch_sizes)),
            "makespan": makespan,
            "throughput_rps": (
                len(self.records) / makespan if makespan > 0 else math.inf
            ),
            "latency_mean": sum(latencies) / len(latencies),
            "latency_p50": latency_percentile(latencies, 50),
            "latency_p95": latency_percentile(latencies, 95),
            "latency_p99": latency_percentile(latencies, 99),
            "latency_max": max(latencies),
            "queue_wait_mean": (
                sum(r.queue_wait for r in self.records) / len(self.records)
            ),
            "mean_batch_size": (
                sum(self.batch_sizes) / len(self.batch_sizes)
            ),
            "mean_queue_depth": (
                sum(self.queue_depths) / len(self.queue_depths)
            ),
            "max_queue_depth": float(max(self.queue_depths)),
            "degrade_events": float(len(self.degrade_events)),
        }
        if cache_stats is not None:
            out["cache_hit_rate"] = cache_stats.hit_rate
            out["cache_evictions"] = float(cache_stats.evictions)
        return out
