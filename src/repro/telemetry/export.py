"""Exporters: Prometheus text format, JSONL event log, Chrome traces.

Three views of the same registry/tracer state:

* :func:`to_prometheus` — the text exposition format scrapers and
  humans both read (``# HELP``/``# TYPE`` then one sample per line;
  histograms render as summary-style quantile series).
* :func:`to_jsonl` / :func:`write_jsonl` — one JSON object per line,
  a metric snapshot record followed by every closed span, for offline
  analysis without a trace viewer.
* :func:`spans_to_chrome_events` + :func:`merged_chrome_trace` — the
  tracer's span tree as a dedicated "spans" process alongside the raw
  engine timelines, all in one Perfetto-loadable list with disjoint
  pids (see :func:`repro.profiling.trace_export.merge_chrome_traces`).
* :func:`render_summary` — the CLI's live-style dashboard text.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.telemetry.registry import (
    DEFAULT_QUANTILES,
    MetricsRegistry,
    format_labels,
)
from repro.telemetry.spans import Span, Tracer
from repro.profiling.trace_export import merge_chrome_traces

PathLike = Union[str, os.PathLike]

_TIME_SCALE = 1e6  # microseconds per simulated second

#: pid reserved for the span timeline in merged traces; section pids
#: count up from 0 and real runs never reach this.
SPAN_PID = 10_000


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        kind = "summary" if family.kind == "histogram" else family.kind
        lines.append(f"# TYPE {family.name} {kind}")
        for labels in sorted(family.series):
            instrument = family.series[labels]
            if family.kind == "histogram":
                base = dict(labels)
                for q in DEFAULT_QUANTILES:
                    if instrument.count:
                        suffix = format_labels(
                            tuple(sorted({**base, "quantile": f"{q / 100:g}"}.items()))
                        )
                        lines.append(
                            f"{family.name}{suffix} {instrument.percentile(q):g}"
                        )
                plain = format_labels(labels)
                lines.append(f"{family.name}_sum{plain} {instrument.sum:g}")
                lines.append(f"{family.name}_count{plain} {instrument.count}")
            else:
                lines.append(
                    f"{family.name}{format_labels(labels)} {instrument.value:g}"
                )
    return "\n".join(lines) + "\n"


def span_to_record(span: Span) -> dict:
    record = {
        "type": "span",
        "name": span.name,
        "category": span.category,
        "start": span.start,
        "end": span.end,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "correlation": span.correlation,
    }
    if span.attrs:
        record["attrs"] = {k: str(v) for k, v in span.attrs.items()}
    return record


def to_jsonl(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None, meta: Optional[dict] = None
) -> List[str]:
    """Event-log lines: one metrics record, then one line per span."""
    header: Dict[str, object] = {"type": "metrics", "metrics": registry.flatten()}
    if meta:
        header["meta"] = meta
    lines = [json.dumps(header, sort_keys=True)]
    if tracer is not None:
        for span in tracer.spans:
            lines.append(json.dumps(span_to_record(span), sort_keys=True))
    return lines


def write_jsonl(
    path: PathLike,
    registry: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    meta: Optional[dict] = None,
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        for line in to_jsonl(registry, tracer, meta):
            fh.write(line + "\n")


def spans_to_chrome_events(tracer: Tracer, pid: int = SPAN_PID) -> List[dict]:
    """Tracer spans as one Chrome-trace process, one thread per depth.

    Nesting renders naturally: a child span sits on the row below its
    parent. Correlation and span/parent ids ride along in ``args`` so
    Perfetto queries can stitch a correlation id across subsystems.
    """
    depth: Dict[int, int] = {}
    events: List[dict] = []
    max_depth = 0
    for span in tracer.spans:
        d = depth[span.parent_id] + 1 if span.parent_id in depth else 0
        depth[span.span_id] = d
        max_depth = max(max_depth, d)
        args: Dict[str, object] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        if span.correlation is not None:
            args["correlation"] = span.correlation
        args.update({k: str(v) for k, v in span.attrs.items()})
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * _TIME_SCALE,
                "dur": span.duration * _TIME_SCALE,
                "pid": pid,
                "tid": d,
                "args": args,
            }
        )
    events.append(
        {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": "spans"}}
    )
    for d in range(max_depth + 1 if events else 0):
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": d,
             "args": {"name": f"depth{d}"}}
        )
    return events


def merged_chrome_trace(
    sections: Mapping[str, Sequence], tracer: Optional[Tracer] = None
) -> List[dict]:
    """One unified timeline: engine traces per run id + the span tree."""
    extra = spans_to_chrome_events(tracer) if tracer is not None else ()
    return merge_chrome_traces(sections, extra_events=extra)


def render_summary(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None, width: int = 72
) -> str:
    """A terminal dashboard of the registry (the CLI's `telemetry` view)."""
    flat = registry.flatten()
    lines = ["=" * width, "telemetry summary".center(width), "=" * width]
    for key in sorted(flat):
        value = flat[key]
        rendered = f"{value:.6g}"
        pad = max(1, width - len(key) - len(rendered))
        lines.append(f"{key}{' ' * pad}{rendered}")
    def _label_values(name: str, label: str) -> Dict[str, float]:
        # repro_x_total{label="v",...} -> {v: value}; prefix scan over
        # the flat map, so multi-label series still resolve.
        out: Dict[str, float] = {}
        prefix = name + "{"
        for key, value in flat.items():
            if key.startswith(prefix):
                for part in key[len(prefix):-1].split(","):
                    k, _, v = part.partition("=")
                    if k == label:
                        out[v.strip('"')] = out.get(v.strip('"'), 0.0) + value
        return out

    link_bytes = {
        tier: flat.get(f'repro_comm_link_bytes_total{{link="{tier}"}}', 0.0)
        for tier in ("intra_node", "inter_node")
    }
    if any(link_bytes.values()):
        lines.append("-" * width)
        lines.append("comm link split")
        total = sum(link_bytes.values())
        for tier in ("intra_node", "inter_node"):
            b = link_bytes[tier]
            secs = flat.get(f'repro_comm_link_seconds_total{{link="{tier}"}}', 0.0)
            share = 100.0 * b / total if total else 0.0
            entry = f"  {tier}: {b:.6g} B ({share:.1f}%), {secs:.6g} s"
            lines.append(entry)
    saved = flat.get("repro_cache_bytes_saved_total", 0.0)
    hit_rows = flat.get("repro_cache_rows_hit_total", 0.0)
    miss_rows = flat.get("repro_cache_rows_missed_total", 0.0)
    if saved or hit_rows or miss_rows:
        lines.append("-" * width)
        lines.append("training cache savings")
        total_rows = hit_rows + miss_rows
        rate = 100.0 * hit_rows / total_rows if total_rows else 0.0
        lines.append(
            f"  rows: {hit_rows:.6g} hit / {miss_rows:.6g} miss "
            f"({rate:.1f}% hit)"
        )
        lines.append(f"  bytes saved: {saved:.6g} B")
        for phase, n in sorted(
            _label_values("repro_cache_epochs_total", "phase").items()
        ):
            lines.append(f"  epochs[{phase}]: {n:.6g}")
    crit = _label_values("repro_critpath_seconds", "category")
    if crit:
        lines.append("-" * width)
        lines.append("critical path (last analyzed epoch)")
        total = sum(crit.values())
        for category, secs in sorted(
            crit.items(), key=lambda kv: -kv[1]
        ):
            share = 100.0 * secs / total if total else 0.0
            lines.append(f"  {category}: {secs:.6g} s ({share:.1f}%)")
        overlap = flat.get("repro_critpath_overlap_loss_seconds")
        if overlap is not None:
            lines.append(f"  overlap loss: {overlap:.6g} s")
        stall = flat.get("repro_critpath_cache_stall_seconds")
        if stall is not None:
            lines.append(f"  cache-miss stalls: {stall:.6g} s")
    breaches = _label_values("repro_slo_breaches_total", "slo")
    anomalies = flat.get("repro_epoch_anomalies_total", 0.0)
    if breaches or anomalies:
        lines.append("-" * width)
        lines.append("SLO / anomaly health")
        for slo, n in sorted(breaches.items()):
            lines.append(f"  breaches[{slo}]: {n:.6g}")
        if anomalies:
            lines.append(f"  epoch anomalies: {anomalies:.6g}")
    if tracer is not None and tracer.spans:
        lines.append("-" * width)
        lines.append(f"spans: {len(tracer.spans)}")
        roots = [s for s in tracer.spans if s.parent_id is None]
        for root in roots[:20]:
            nchildren = len(tracer.children_of(root))
            corr = f" corr={root.correlation}" if root.correlation else ""
            lines.append(
                f"  {root.name} [{root.start:.4f}, {root.end if root.end is not None else float('nan'):.4f}]"
                f" children={nchildren}{corr}"
            )
        if len(roots) > 20:
            lines.append(f"  ... {len(roots) - 20} more root spans")
    lines.append("=" * width)
    return "\n".join(lines)
