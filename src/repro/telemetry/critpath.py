"""Critical-path attribution over the simulated event DAG.

The engine assigns every op ``start = max(stream ready, dependency end
times)`` and ``end = start + duration`` — an exact float ``max``, so the
*binding* predecessor of any op (the one that actually delayed it) ends
at bit-exactly the op's start time. :func:`critical_path` exploits that:
walking backward from the last-finishing event, at each step it follows
an event whose ``end`` equals the current ``start`` exactly. When no
event ends there the op was waiting on something outside the trace
(batch arrival, dispatch policy, the epoch barrier) and the gap is
charged to a synthetic ``"wait"`` category. The resulting step chain
tiles the window ``[floor, end]`` with no overlap, so the per-category
on-path seconds (waits included) sum to the epoch time — the invariant
the attribution report is built on.

Because replayed :class:`~repro.plan.plan.ExecutionPlan` epochs
regenerate bit-identical :class:`~repro.device.engine.TraceEvent` lists,
the same analyzer covers eager, batched, and replay paths unchanged.
:func:`critical_path_from_plan` additionally walks the plan's *explicit*
dependency edges (event deps plus implicit stream order) — the
ground-truth DAG variant the tests validate against.
"""

from __future__ import annotations

import bisect
import fnmatch
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: synthetic category charged for binding-free gaps on the path (arrival
#: waits, dispatch policy, barrier idling — time no traced op explains).
WAIT_CATEGORY = "wait"

#: op-name globs whose on-path time is attributed to cache-miss stalls:
#: serving-frontier gathers and training-tile/warm broadcasts are the
#: transfers the embedding / training-tile caches exist to elide.
DEFAULT_CACHE_STALL_PATTERNS: Tuple[str, ...] = ("serve.gather*", "*bcast*")

#: pid of the critical-path row in merged Chrome traces (the span tree
#: owns 10_000; engine sections count up from 0).
CRITPATH_PID = 10_001

_TIME_SCALE = 1e6  # microseconds per simulated second


@dataclass(frozen=True)
class PathStep:
    """One interval of the critical path (an op, or a wait gap)."""

    name: str
    category: str
    device: str
    stream: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_wait(self) -> bool:
        return self.category == WAIT_CATEGORY


def _rank_of(device: str) -> Optional[int]:
    digits = "".join(ch for ch in device if ch.isdigit())
    return int(digits) if digits else None


@dataclass
class CritPathReport:
    """Ranked attribution of one window's critical path."""

    #: analysis window; ``window_end - window_start`` is the epoch time
    #: the category shares are measured against.
    window_start: float
    window_end: float
    #: the path, earliest step first, tiling the window exactly.
    steps: Tuple[PathStep, ...]
    #: on-path seconds per category (includes :data:`WAIT_CATEGORY`).
    category_seconds: Dict[str, float]
    #: off-path busy seconds per category — work that ran fully
    #: overlapped with the path (never includes "wait").
    category_slack: Dict[str, float]
    #: on-path seconds per device (waits excluded).
    device_seconds: Dict[str, float]
    #: ``(name, category, count, seconds)`` of path ops, by seconds desc.
    top_ops: List[Tuple[str, str, int, float]]
    #: on-path communication seconds — comm the schedule failed to hide
    #: behind compute (the paper's overlap loss).
    overlap_loss_seconds: float
    #: on-path seconds of cache-fill transfers (gathers/broadcasts).
    cache_stall_seconds: float
    #: device owning the most on-path seconds, and its parsed rank.
    straggler_device: Optional[str]
    straggler_rank: Optional[int]

    @property
    def epoch_time(self) -> float:
        return self.window_end - self.window_start

    @property
    def num_ops(self) -> int:
        return sum(1 for s in self.steps if not s.is_wait)

    @property
    def path_seconds(self) -> float:
        """Sum of step durations; equals :attr:`epoch_time` up to float
        summation error (the steps tile the window by construction)."""
        return sum(s.duration for s in self.steps)

    def share(self, category: str) -> float:
        if self.epoch_time <= 0.0:
            return 0.0
        return self.category_seconds.get(category, 0.0) / self.epoch_time

    def to_dict(self) -> dict:
        return {
            "window_start": self.window_start,
            "window_end": self.window_end,
            "epoch_time": self.epoch_time,
            "num_ops": self.num_ops,
            "category_seconds": dict(self.category_seconds),
            "category_slack": dict(self.category_slack),
            "device_seconds": dict(self.device_seconds),
            "top_ops": [
                {"name": n, "category": c, "count": k, "seconds": s}
                for n, c, k, s in self.top_ops
            ],
            "overlap_loss_seconds": self.overlap_loss_seconds,
            "cache_stall_seconds": self.cache_stall_seconds,
            "straggler_device": self.straggler_device,
            "straggler_rank": self.straggler_rank,
        }

    def render(self, top: int = 10, width: int = 72) -> str:
        """Terminal-friendly attribution report."""
        lines = [
            "-" * width,
            f"critical path: {self.epoch_time:.6g} s over {self.num_ops} "
            f"ops  [{self.window_start:.6g}, {self.window_end:.6g}]",
            "-" * width,
            f"  {'category':<14} {'on-path':>12} {'share':>7} {'slack':>12}",
        ]
        ordered = sorted(
            self.category_seconds, key=self.category_seconds.get, reverse=True
        )
        for cat in ordered:
            lines.append(
                f"  {cat:<14} {self.category_seconds[cat]:>12.6g} "
                f"{self.share(cat):>6.1%} "
                f"{self.category_slack.get(cat, 0.0):>12.6g}"
            )
        lines.append(
            f"  overlap loss (comm on path): {self.overlap_loss_seconds:.6g} s"
            f" ({self.share('comm'):.1%})"
        )
        lines.append(
            f"  cache-miss stalls on path:   {self.cache_stall_seconds:.6g} s"
        )
        if self.straggler_device is not None:
            rank = (
                f" (rank {self.straggler_rank})"
                if self.straggler_rank is not None
                else ""
            )
            lines.append(
                f"  straggler: {self.straggler_device}{rank}, "
                f"{self.device_seconds[self.straggler_device]:.6g} s on path"
            )
        if self.top_ops:
            lines.append("  top path ops:")
            for i, (name, cat, count, seconds) in enumerate(
                self.top_ops[:top], start=1
            ):
                lines.append(
                    f"    {i:>2}. {name:<28} [{cat}] x{count:<4} "
                    f"{seconds:.6g} s"
                )
        lines.append("-" * width)
        return "\n".join(lines)


def _pick(candidates):
    """Deterministic choice among equal-end candidates: largest duration
    first, then lexicographic (device, stream, name)."""
    return min(
        candidates,
        key=lambda e: (-(e.end - e.start), e.device, e.stream, e.name),
    )


def _step_of(ev) -> PathStep:
    return PathStep(
        name=ev.name,
        category=ev.category,
        device=ev.device,
        stream=ev.stream,
        start=ev.start,
        end=ev.end,
    )


def _assemble(
    events,
    steps_rev: List[PathStep],
    floor: float,
    window_end: float,
    cache_stall_patterns: Sequence[str],
) -> CritPathReport:
    steps = tuple(reversed(steps_rev))
    category_seconds: Dict[str, float] = {}
    device_seconds: Dict[str, float] = {}
    op_totals: Dict[Tuple[str, str], List[float]] = {}
    overlap_loss = 0.0
    cache_stall = 0.0
    for step in steps:
        d = step.duration
        category_seconds[step.category] = (
            category_seconds.get(step.category, 0.0) + d
        )
        if step.is_wait:
            continue
        device_seconds[step.device] = device_seconds.get(step.device, 0.0) + d
        entry = op_totals.setdefault((step.name, step.category), [0, 0.0])
        entry[0] += 1
        entry[1] += d
        if step.category == "comm":
            overlap_loss += d
        if any(
            fnmatch.fnmatchcase(step.name, pat)
            for pat in cache_stall_patterns
        ):
            cache_stall += d
    busy: Dict[str, float] = {}
    for ev in events:
        busy[ev.category] = busy.get(ev.category, 0.0) + (ev.end - ev.start)
    category_slack = {
        cat: max(total - category_seconds.get(cat, 0.0), 0.0)
        for cat, total in busy.items()
    }
    straggler_device = (
        max(sorted(device_seconds), key=device_seconds.get)
        if device_seconds
        else None
    )
    top_ops = sorted(
        (
            (name, cat, int(count), seconds)
            for (name, cat), (count, seconds) in op_totals.items()
        ),
        key=lambda row: (-row[3], row[0]),
    )
    return CritPathReport(
        window_start=floor,
        window_end=window_end,
        steps=steps,
        category_seconds=category_seconds,
        category_slack=category_slack,
        device_seconds=device_seconds,
        top_ops=top_ops,
        overlap_loss_seconds=overlap_loss,
        cache_stall_seconds=cache_stall,
        straggler_device=straggler_device,
        straggler_rank=(
            _rank_of(straggler_device) if straggler_device is not None else None
        ),
    )


def critical_path(
    trace: Sequence,
    floor: Optional[float] = None,
    cache_stall_patterns: Sequence[str] = DEFAULT_CACHE_STALL_PATTERNS,
) -> CritPathReport:
    """Attribute a trace window to its critical path.

    ``trace`` is any sequence of :class:`~repro.device.engine.TraceEvent`
    (an epoch slice, a serving run, a flight-recorder bundle's ops).
    ``floor`` is the window start; defaults to the earliest op start.
    The walk follows exact ``end == start`` equality (see module
    docstring); windows the ops cannot explain become ``"wait"`` steps,
    so the report's category seconds always sum to the window length.
    """
    events = [ev for ev in trace if ev.end >= ev.start]
    if not events:
        raise ConfigurationError("critical_path: empty trace")
    if floor is None:
        floor = min(ev.start for ev in events)
    window_end = max(ev.end for ev in events)
    if window_end <= floor:
        raise ConfigurationError(
            f"critical_path: empty window [{floor}, {window_end}]"
        )
    # events starting before the floor would make the tiles overlap the
    # window edge; clamp the analysis to ops inside the window.
    events = [ev for ev in events if ev.start >= floor]
    by_end: Dict[float, List] = {}
    for ev in events:
        by_end.setdefault(ev.end, []).append(ev)
    ends_sorted = sorted(by_end)

    steps_rev: List[PathStep] = []
    visited = set()
    cur = _pick(by_end[window_end])
    while True:
        steps_rev.append(_step_of(cur))
        visited.add(id(cur))
        s = cur.start
        if s <= floor:
            break
        preds = [e for e in by_end.get(s, ()) if id(e) not in visited]
        if preds:
            cur = _pick(preds)
            continue
        # no event ends exactly at s: the op waited on something outside
        # the trace. Bridge back to the latest earlier completion.
        i = bisect.bisect_left(ends_sorted, s) - 1
        prev_end = ends_sorted[i] if i >= 0 else None
        if prev_end is None or prev_end <= floor:
            steps_rev.append(
                PathStep("(wait)", WAIT_CATEGORY, "-", "-", floor, s)
            )
            break
        steps_rev.append(
            PathStep("(wait)", WAIT_CATEGORY, "-", "-", prev_end, s)
        )
        remaining = [e for e in by_end[prev_end] if id(e) not in visited]
        if not remaining:  # pragma: no cover - visited events end later
            break
        cur = _pick(remaining)
    return _assemble(events, steps_rev, floor, window_end, cache_stall_patterns)


@dataclass(frozen=True)
class _PlanOp:
    """A plan op materialised with its timeline times (pseudo-event)."""

    name: str
    category: str
    device: str
    stream: str
    start: float
    end: float


def critical_path_from_plan(
    plan,
    t0: float = 0.0,
    cache_stall_patterns: Sequence[str] = DEFAULT_CACHE_STALL_PATTERNS,
) -> CritPathReport:
    """Exact-DAG critical path of a captured :class:`ExecutionPlan`.

    Unlike :func:`critical_path`, the backward walk here follows the
    plan's *recorded* dependency edges (explicit event deps plus the
    implicit previous-op-per-stream edges), so the returned path is a
    true dependency chain, not just a time-equality chain. Level-0 ops
    start at ``t0``; the path therefore never contains wait steps.
    """
    if plan.num_ops == 0:
        raise ConfigurationError("critical_path_from_plan: empty plan")
    starts, ends = plan.compute_timeline(t0)
    deps = plan.op_dependencies()
    meta = plan.op_meta()

    def op_of(i: int) -> _PlanOp:
        name, category, device, stream = meta[i]
        return _PlanOp(name, category, device, stream,
                       float(starts[i]), float(ends[i]))

    events = [op_of(i) for i in range(plan.num_ops)]
    window_end = max(ev.end for ev in events)

    def idx_key(i: int):
        ev = events[i]
        return (-(ev.end - ev.start), ev.device, ev.stream, ev.name)

    steps_rev: List[PathStep] = []
    cur_idx = min(
        (i for i, ev in enumerate(events) if ev.end == window_end),
        key=idx_key,
    )
    while True:
        cur = events[cur_idx]
        steps_rev.append(_step_of(cur))
        pred_ids = deps[cur_idx]
        if not pred_ids:
            break
        # the binding predecessor: the dependency whose end equals the
        # op's start (exact, by the engine's max arithmetic).
        binding = [d for d in pred_ids if events[d].end == cur.start]
        if not binding:
            # start was bound by t0 (all deps ended earlier).
            break
        cur_idx = min(binding, key=idx_key)
    return _assemble(
        events, steps_rev, float(t0), window_end, cache_stall_patterns
    )


def publish_critpath(telemetry, report: CritPathReport,
                     epoch: Optional[int] = None) -> None:
    """Push a report's headline numbers into the telemetry registry.

    Gauges carry the *latest* analyzed window (the dashboard convention);
    ``repro_critpath_analyses_total`` counts how many ran.
    """
    telemetry.inc("repro_critpath_analyses_total")
    for cat, seconds in report.category_seconds.items():
        telemetry.set_gauge("repro_critpath_seconds", seconds, category=cat)
        telemetry.set_gauge("repro_critpath_share", report.share(cat),
                            category=cat)
    for cat, seconds in report.category_slack.items():
        telemetry.set_gauge("repro_critpath_slack_seconds", seconds,
                            category=cat)
    telemetry.set_gauge(
        "repro_critpath_overlap_loss_seconds", report.overlap_loss_seconds
    )
    telemetry.set_gauge(
        "repro_critpath_cache_stall_seconds", report.cache_stall_seconds
    )
    telemetry.set_gauge("repro_critpath_ops", float(report.num_ops))
    if report.straggler_rank is not None:
        telemetry.set_gauge(
            "repro_critpath_straggler_rank", float(report.straggler_rank)
        )
    if epoch is not None:
        telemetry.set_gauge("repro_critpath_epoch", float(epoch))


def critpath_to_chrome_events(
    report: CritPathReport, pid: int = CRITPATH_PID
) -> List[dict]:
    """The path as its own Chrome-trace process (one ``critical path``
    row), appendable to any merged timeline."""
    events: List[dict] = [
        {
            "name": step.name,
            "cat": step.category,
            "ph": "X",
            "ts": step.start * _TIME_SCALE,
            "dur": step.duration * _TIME_SCALE,
            "pid": pid,
            "tid": 0,
            "args": {"device": step.device, "stream": step.stream},
        }
        for step in report.steps
    ]
    events.append(
        {"name": "process_name", "ph": "M", "pid": pid,
         "args": {"name": "critical path"}}
    )
    events.append(
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": "path"}}
    )
    return events
