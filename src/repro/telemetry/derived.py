"""Derived instruments computed from a trace + the hardware model.

These are the paper-facing numbers (§4.2–4.3): comm/comp overlap
efficiency, straggler skew, per-rank FLOPs and bytes moved, and
achieved-vs-roofline fractions against the cost model's own peaks.
Sampled once per epoch from the epoch's trace slice — interval math is
the vectorised :mod:`repro.utils.intervals`, so sampling every epoch
stays inside the instrumentation-overhead budget.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Sequence

import numpy as np

from repro.utils.intervals import intersection_measure, union_measure


def _per_device_spans(trace: Sequence) -> Dict[str, Dict[str, list]]:
    """Split events into per-device comm/comp start/end columns."""
    by_device: Dict[str, Dict[str, list]] = defaultdict(
        lambda: {
            "comp_s": [], "comp_e": [],
            "comm_s": [], "comm_e": [],
            "nbytes": 0.0, "flops": 0.0,
        }
    )
    for ev in trace:
        slot = by_device[ev.device]
        if ev.category == "comm":
            slot["comm_s"].append(ev.start)
            slot["comm_e"].append(ev.end)
        else:
            slot["comp_s"].append(ev.start)
            slot["comp_e"].append(ev.end)
        slot["nbytes"] += ev.nbytes
        slot["flops"] += getattr(ev, "flops", 0.0)
    return by_device


def sample_epoch(
    telemetry,
    trace: Sequence,
    *,
    machine=None,
    cost_model=None,
    epoch_time: float = 0.0,
    epoch: Optional[int] = None,
) -> Dict[str, float]:
    """Publish per-epoch derived gauges; returns the headline values.

    ``machine``/``cost_model`` are optional — without them the roofline
    fractions are skipped but overlap/skew/volume gauges still publish.
    """
    summary: Dict[str, float] = {}
    if not trace:
        return summary
    by_device = _per_device_spans(trace)

    compute_busy: Dict[str, float] = {}
    comm_busy_total = 0.0
    exposed_total = 0.0
    for device in sorted(by_device):
        slot = by_device[device]
        comp_s = np.asarray(slot["comp_s"])
        comp_e = np.asarray(slot["comp_e"])
        comm_s = np.asarray(slot["comm_s"])
        comm_e = np.asarray(slot["comm_e"])
        busy = union_measure(comp_s, comp_e)
        comm_busy = union_measure(comm_s, comm_e)
        exposed = comm_busy - intersection_measure(comm_s, comm_e, comp_s, comp_e)
        compute_busy[device] = busy
        comm_busy_total += comm_busy
        exposed_total += exposed

        telemetry.set_gauge("repro_device_compute_busy_seconds", busy, device=device)
        telemetry.set_gauge("repro_device_comm_busy_seconds", comm_busy, device=device)
        telemetry.set_gauge("repro_device_exposed_comm_seconds", exposed, device=device)
        telemetry.set_gauge("repro_device_bytes_moved", slot["nbytes"], device=device)
        telemetry.set_gauge("repro_device_flops", slot["flops"], device=device)

        if epoch_time > 0 and cost_model is not None and slot["flops"]:
            achieved = slot["flops"] / epoch_time
            peak = cost_model.gpu.peak_flops * cost_model.costs.gemm_flop_efficiency
            telemetry.set_gauge(
                "repro_roofline_flops_fraction", achieved / peak, device=device
            )
        if machine is not None and comm_busy > 0 and slot["nbytes"]:
            rank = _rank_of(device)
            if rank is not None and rank < machine.num_gpus:
                achieved_bw = slot["nbytes"] / comm_busy
                telemetry.set_gauge(
                    "repro_roofline_bandwidth_fraction",
                    achieved_bw / machine.injection_bandwidth(rank),
                    device=device,
                )

    # Overlap efficiency: the fraction of communication hidden under
    # compute, across all ranks (1.0 when there was nothing to hide).
    overlap = 1.0 - exposed_total / comm_busy_total if comm_busy_total > 0 else 1.0
    telemetry.set_gauge("repro_overlap_efficiency", overlap)
    summary["overlap_efficiency"] = overlap

    # Straggler skew: slowest rank's compute busy over the mean (1.0 is
    # perfectly balanced); the paper's load-balance lens on partitioning.
    busies = list(compute_busy.values())
    mean_busy = sum(busies) / len(busies) if busies else 0.0
    skew = max(busies) / mean_busy if mean_busy > 0 else 1.0
    telemetry.set_gauge("repro_straggler_skew", skew)
    summary["straggler_skew"] = skew

    if epoch is not None:
        telemetry.set_gauge("repro_last_sampled_epoch", float(epoch))
    return summary


def _rank_of(device: str) -> Optional[int]:
    """Rank encoded in a device name like ``gpu3`` (None if unparseable)."""
    digits = "".join(ch for ch in device if ch.isdigit())
    return int(digits) if digits else None
