"""Span-based tracing over simulated time.

A :class:`Span` is a named interval on the simulator's clock, carrying a
``correlation`` id that links related work across subsystem boundaries
(an epoch's kernels, a serving batch's cache fills, a recovery's
re-broadcasts all share one id). Spans nest: the :class:`Tracer` keeps
an open-span stack, so a span begun while another is open becomes its
child and inherits the parent's correlation id unless it sets its own.

Timestamps come from the *simulated* clock (``SimContext.elapsed`` /
event start-end times), never the wall clock — traces are deterministic
and mergeable across runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One named interval of simulated time in the span tree."""

    name: str
    start: float
    end: Optional[float] = None
    span_id: int = 0
    parent_id: Optional[int] = None
    correlation: Optional[str] = None
    category: str = "span"
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def closed(self) -> bool:
        return self.end is not None


class Tracer:
    """Builds the span tree; shared by every instrumented subsystem."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # -- structural queries --------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def by_correlation(self, correlation: str) -> List[Span]:
        return [s for s in self.spans if s.correlation == correlation]

    # -- span lifecycle ------------------------------------------------------

    def begin(
        self,
        name: str,
        start: float,
        *,
        correlation: Optional[str] = None,
        category: str = "span",
        **attrs: object,
    ) -> Span:
        parent = self.current
        if correlation is None and parent is not None:
            correlation = parent.correlation
        span = Span(
            name=name,
            start=start,
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            correlation=correlation,
            category=category,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, end: float) -> Span:
        span.end = max(end, span.start)
        # Close any forgotten children too so the stack cannot wedge.
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            if dangling.end is None:
                dangling.end = span.end
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        return span

    @contextmanager
    def span(
        self,
        name: str,
        clock: Callable[[], float],
        *,
        correlation: Optional[str] = None,
        category: str = "span",
        **attrs: object,
    ) -> Iterator[Span]:
        """Open a span at ``clock()`` now, close it at ``clock()`` on exit."""
        opened = self.begin(
            name, clock(), correlation=correlation, category=category, **attrs
        )
        try:
            yield opened
        finally:
            self.end(opened, clock())

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        correlation: Optional[str] = None,
        category: str = "span",
        **attrs: object,
    ) -> Span:
        """Append an already-finished leaf under the current open span."""
        parent = self.current
        if correlation is None and parent is not None:
            correlation = parent.correlation
        span = Span(
            name=name,
            start=start,
            end=max(end, start),
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            correlation=correlation,
            category=category,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self._next_id = 1
