"""The :class:`Telemetry` hub — one object wiring registry + tracer.

Subsystems hold a single ``Telemetry`` handle (the engine carries it
duck-typed as ``engine.telemetry``, so ``repro.device`` never imports
this package). The hub's hot path is :meth:`on_op`, invoked by
``Engine.submit`` and ``Communicator._record`` for every simulated op:
it resolves its instruments once per (category, device) pair and then
only does float adds, keeping instrumented epochs within the overhead
budget. Op-level *spans* are opt-in (``trace_ops=True``) because a span
object per kernel is the one cost that does not amortise.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import Span, Tracer


class Telemetry:
    """Shared metrics registry + tracer with engine-facing fast paths."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        run_id: str = "run",
        trace_ops: bool = False,
        flight=None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.run_id = run_id
        self.trace_ops = trace_ops
        #: optional :class:`~repro.telemetry.flightrec.FlightRecorder`;
        #: when set, every traced op/comm/annotation lands in its ring.
        self.flight = flight
        #: section tag on flight op records ("train"/"serve"/"dynamic");
        #: postmortem Chrome traces use it for per-subsystem pid blocks.
        self._flight_section = run_id
        # (category, device) -> (ops counter, seconds counter)
        self._op_instruments: Dict[Tuple[str, str], tuple] = {}
        # link tier ("intra_node" | "inter_node") -> (bytes, seconds)
        self._link_instruments: Dict[str, tuple] = {}
        self._bytes_total = self.registry.counter(
            "repro_comm_bytes_total",
            "Bytes moved by communication ops across all ranks",
        )
        self._flops_total = self.registry.counter(
            "repro_flops_total", "Floating-point operations executed"
        )

    # -- engine-facing hot path ----------------------------------------------

    def on_op(self, ev) -> None:
        """Account one finished engine op (a ``TraceEvent``)."""
        self.on_op_values(
            ev.category,
            ev.device,
            ev.end - ev.start,
            ev.nbytes,
            getattr(ev, "flops", 0.0),
        )
        if self.flight is not None:
            # one tuple append; raw events convert to JSON at dump time.
            # (on_op_values callers carry no event, so untraced engines
            # contribute comm/annotation records only.)
            self.flight.record_op(ev, self._flight_section)
        if self.trace_ops and self.tracer.depth:
            self.tracer.record(
                ev.name,
                ev.start,
                ev.end,
                correlation=ev.correlation,
                category=ev.category,
                device=ev.device,
                stream=ev.stream,
            )

    def on_op_values(
        self,
        category: str,
        device: str,
        seconds: float,
        nbytes: float = 0.0,
        flops: float = 0.0,
    ) -> None:
        """Account one op from its raw values, skipping event construction.

        The engine takes this path when no ``TraceEvent`` would exist
        anyway (``record_trace=False`` and op spans off) — building one
        just for accounting would dominate the hook cost and blow the
        overhead budget.
        """
        key = (category, device)
        cached = self._op_instruments.get(key)
        if cached is None:
            cached = (
                self.registry.counter(
                    "repro_ops_total",
                    "Simulated ops executed, by category and device",
                    category=category,
                    device=device,
                ),
                self.registry.counter(
                    "repro_op_seconds_total",
                    "Simulated busy seconds, by category and device",
                    category=category,
                    device=device,
                ),
            )
            self._op_instruments[key] = cached
        ops, seconds_counter = cached
        ops.value += 1.0
        seconds_counter.value += seconds
        if nbytes:
            self._bytes_total.value += nbytes
        if flops:
            self._flops_total.value += flops

    def on_comm(self, link: str, seconds: float, nbytes: float) -> None:
        """Account one collective's traffic on its link tier.

        Called once per collective by ``Communicator._record`` with the
        communicator's :attr:`link_class` ("intra_node" for rank sets
        confined to one node, "inter_node" for sets that cross the NIC).
        Bytes here are per payload, not per rank — summing the two tiers
        gives the wire traffic of the run, which is what the
        hierarchical-collective benches compare. Replayed plans do not
        re-account link tiers (the plan template stores aggregate comm
        bytes only; see :meth:`on_replay`).
        """
        cached = self._link_instruments.get(link)
        if cached is None:
            cached = (
                self.registry.counter(
                    "repro_comm_link_bytes_total",
                    "Collective payload bytes by link tier",
                    link=link,
                ),
                self.registry.counter(
                    "repro_comm_link_seconds_total",
                    "Collective busy seconds by link tier",
                    link=link,
                ),
            )
            self._link_instruments[link] = cached
        bytes_counter, seconds_counter = cached
        bytes_counter.value += nbytes
        seconds_counter.value += seconds
        if self.flight is not None:
            self.flight.record_comm(link, seconds, nbytes)

    def on_replay(
        self,
        *,
        start: float,
        end: float,
        category_totals: Dict[str, float],
        category_counts: Dict[str, int],
        comm_nbytes: float,
        num_gpus: int,
        correlation: Optional[str] = None,
    ) -> Span:
        """Account one plan replay in aggregate (no per-event iteration).

        Captured plans replay thousands of ops via the vectorised
        timeline; iterating them through :meth:`on_op` would forfeit the
        replay speedup, so the plan hands us its precomputed per-category
        totals instead. Replayed op durations land in the same counters
        as eager ops; replayed FLOPs are not tracked (plan templates do
        not carry them — see docs/observability.md).
        """
        for category, total in category_totals.items():
            # Timeline totals are per schedule; counters are cross-rank
            # like eager accounting, hence the "all" device label.
            self.registry.counter(
                "repro_op_seconds_total", category=category, device="all"
            ).value += total
            self.registry.counter(
                "repro_ops_total", category=category, device="all"
            ).value += category_counts.get(category, 0)
        if comm_nbytes:
            self._bytes_total.value += comm_nbytes
        self.registry.counter(
            "repro_plan_replays_total", "Captured-plan replays executed"
        ).value += 1.0
        if self.flight is not None:
            self.flight.record(
                "replay",
                time=end,
                start=start,
                category_totals=dict(category_totals),
                comm_nbytes=comm_nbytes,
                num_gpus=num_gpus,
            )
        return self.tracer.record(
            "plan.replay",
            start,
            end,
            correlation=correlation,
            category="plan",
            num_gpus=num_gpus,
        )

    # -- convenience pass-throughs -------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        self.registry.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        self.registry.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.registry.histogram(name, **labels).observe(value)

    # -- flight recorder ------------------------------------------------------

    def set_flight_section(self, section: str) -> None:
        """Tag subsequent flight op records (``train``/``serve``/...).

        Postmortem bundles replay each section as its own Chrome-trace
        process, so a hub shared across subsystems keeps them apart.
        """
        self._flight_section = section

    def flight_note(self, kind: str, time: float = 0.0, **payload) -> None:
        """Drop an annotation (fault, degrade, cache_gen, ...) in the ring."""
        if self.flight is not None:
            self.flight.record(kind, time=time, **payload)

    def dump_postmortem(self, trigger: str, time: float = 0.0,
                        **meta) -> Optional[dict]:
        """Freeze the flight ring into a postmortem bundle (if recording)."""
        if self.flight is None:
            return None
        return self.flight.dump(trigger, time=time, telemetry=self, meta=meta)
