"""SLO monitoring with burn-rate windows + epoch-time anomaly detection.

An :class:`SLO` is an error-budget contract over a stream of
observations: "p99 latency <= 2 ms" is "at most 1% of requests may
exceed 2 ms" (budget 0.01), "hit rate >= 90%" is "at most 10% of
lookups may miss" (budget 0.10). The :class:`SLOMonitor` tracks, per
sliding window of *simulated* time, the bad fraction divided by the
budget — the **burn rate** (1.0 = consuming budget exactly as fast as
allowed; Google SRE workbook convention). A breach fires when every
configured window burns past the threshold simultaneously (the
multi-window guard against paging on blips), and registered callbacks
run on the rising edge — the serving engine uses that to dump a
flight-recorder postmortem the moment an SLO goes red.

:class:`EpochTimeAnomalyDetector` is the training-side sibling: a
rolling median + MAD z-score over recent epoch times (robust to the
occasional straggler epoch polluting the baseline). Epochs with
``0.6745 * (x - median) / MAD > threshold`` are flagged, counted, and —
when the training loop has a telemetry hub — trigger an on-the-spot
critical-path attribution of the slow epoch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

_COMPARISONS = ("le", "ge")


@dataclass(frozen=True)
class SLO:
    """One service-level objective over an observation stream."""

    #: signal name; producers feed monitors by this name.
    name: str
    #: the per-observation pass threshold (seconds, rate, ...).
    threshold: float
    #: "le": an observation is good when ``value <= threshold``;
    #: "ge" flips it (hit rates, accuracies).
    comparison: str = "le"
    #: allowed bad fraction; 0.01 expresses a p99 objective.
    budget: float = 0.01
    #: sliding windows (simulated seconds) that must *all* burn past
    #: :attr:`burn_threshold` for a breach.
    windows: Tuple[float, ...] = (0.05, 0.5)
    burn_threshold: float = 1.0
    #: observations required in the longest window before burn rates
    #: are trusted (cold-start guard).
    min_samples: int = 16
    description: str = ""

    def __post_init__(self) -> None:
        if self.comparison not in _COMPARISONS:
            raise ConfigurationError(
                f"SLO {self.name!r}: comparison must be one of "
                f"{_COMPARISONS}, got {self.comparison!r}"
            )
        if not (0.0 < self.budget <= 1.0):
            raise ConfigurationError(
                f"SLO {self.name!r}: budget must be in (0, 1], got "
                f"{self.budget}"
            )
        if not self.windows or any(w <= 0 for w in self.windows):
            raise ConfigurationError(
                f"SLO {self.name!r}: windows must be positive, got "
                f"{self.windows}"
            )
        if self.min_samples < 1:
            raise ConfigurationError(
                f"SLO {self.name!r}: min_samples must be >= 1"
            )

    def is_good(self, value: float) -> bool:
        if self.comparison == "le":
            return value <= self.threshold
        return value >= self.threshold


@dataclass(frozen=True)
class SLOBreach:
    """One rising-edge breach of an SLO."""

    slo: str
    time: float
    #: burn rate per configured window, in :attr:`SLO.windows` order.
    burn_rates: Tuple[float, ...]
    bad: float
    total: float


class SLOMonitor:
    """Tracks burn rates for a set of SLOs; fires breach callbacks.

    ``registry`` (optional; a shared
    :class:`~repro.telemetry.MetricsRegistry`) receives
    ``repro_slo_burn_rate{slo=,window=}`` gauges and
    ``repro_slo_breaches_total{slo=}`` counters, so SLO health lands in
    snapshots and the regression gate like everything else.
    """

    def __init__(self, slos: Sequence[SLO], registry=None) -> None:
        self.slos: Dict[str, SLO] = {}
        for slo in slos:
            if slo.name in self.slos:
                raise ConfigurationError(f"duplicate SLO {slo.name!r}")
            self.slos[slo.name] = slo
        self.registry = registry
        #: (time, bad_weight, weight) samples per signal, oldest first.
        self._samples: Dict[str, Deque[Tuple[float, float, float]]] = {
            name: deque() for name in self.slos
        }
        self._breaching: Dict[str, bool] = {name: False for name in self.slos}
        self.breaches: List[SLOBreach] = []
        self._callbacks: List[Callable[[SLOBreach], None]] = []

    def __contains__(self, name: str) -> bool:
        return name in self.slos

    def on_breach(self, callback: Callable[[SLOBreach], None]) -> None:
        self._callbacks.append(callback)

    def is_breaching(self, name: str) -> bool:
        return self._breaching[name]

    # -- feeding -------------------------------------------------------------

    def observe(self, name: str, value: float,
                time: float) -> Optional[SLOBreach]:
        """Score one observation against its SLO at simulated ``time``."""
        slo = self.slos[name]
        bad = 0.0 if slo.is_good(value) else 1.0
        return self._account(name, time, bad, 1.0)

    def observe_outcomes(self, name: str, time: float, bad: float,
                         total: float) -> Optional[SLOBreach]:
        """Score a pre-judged batch: ``bad`` failures out of ``total``."""
        if total <= 0:
            return None
        if bad < 0 or bad > total:
            raise ConfigurationError(
                f"SLO {name!r}: bad={bad} outside [0, total={total}]"
            )
        return self._account(name, time, float(bad), float(total))

    def burn_rate(self, name: str, window: float, now: float) -> float:
        """Bad fraction over ``[now - window, now]`` divided by budget."""
        slo = self.slos[name]
        bad = total = 0.0
        for t, b, w in self._samples[name]:
            if t >= now - window:
                bad += b
                total += w
        if total == 0.0:
            return 0.0
        return (bad / total) / slo.budget

    # -- internals -----------------------------------------------------------

    def _account(self, name: str, time: float, bad: float,
                 weight: float) -> Optional[SLOBreach]:
        slo = self.slos[name]
        samples = self._samples[name]
        samples.append((time, bad, weight))
        horizon = time - max(slo.windows)
        while samples and samples[0][0] < horizon:
            samples.popleft()
        total = sum(w for _, _, w in samples)
        rates = tuple(
            self.burn_rate(name, window, time) for window in slo.windows
        )
        if self.registry is not None:
            for window, rate in zip(slo.windows, rates):
                self.registry.gauge(
                    "repro_slo_burn_rate",
                    "Error-budget burn rate per SLO and window",
                    slo=name, window=f"{window:g}",
                ).set(rate)
        burning = (
            total >= slo.min_samples
            and all(rate >= slo.burn_threshold for rate in rates)
        )
        was = self._breaching[name]
        self._breaching[name] = burning
        if not burning or was:
            return None
        breach = SLOBreach(
            slo=name,
            time=time,
            burn_rates=rates,
            bad=sum(b for _, b, _ in samples),
            total=total,
        )
        self.breaches.append(breach)
        if self.registry is not None:
            self.registry.counter(
                "repro_slo_breaches_total", "SLO breaches (rising edges)",
                slo=name,
            ).inc()
        for callback in self._callbacks:
            callback(breach)
        return breach


def default_serving_slos(
    latency_threshold: float,
    hit_rate_target: Optional[float] = None,
    degraded_budget: float = 0.25,
    windows: Tuple[float, ...] = (0.05, 0.5),
) -> List[SLO]:
    """The serving engine's conventional SLO set.

    * ``serving_latency`` — "p99 <= latency_threshold" as a 1% budget
      over per-request latencies;
    * ``serving_hit_rate`` — cache lookups must hit at
      ``hit_rate_target`` (omit to skip);
    * ``serving_degraded`` — at most ``degraded_budget`` of batches may
      execute in degraded mode.
    """
    slos = [
        SLO(
            name="serving_latency",
            threshold=latency_threshold,
            comparison="le",
            budget=0.01,
            windows=windows,
            description="p99 end-to-end request latency",
        ),
        SLO(
            name="serving_degraded",
            threshold=0.5,  # outcomes are pre-judged; threshold unused
            comparison="le",
            budget=degraded_budget,
            windows=windows,
            min_samples=4,
            description="share of batches served in degraded mode",
        ),
    ]
    if hit_rate_target is not None:
        if not (0.0 < hit_rate_target < 1.0):
            raise ConfigurationError(
                f"hit_rate_target must be in (0, 1), got {hit_rate_target}"
            )
        slos.append(
            SLO(
                name="serving_hit_rate",
                threshold=0.5,  # outcomes are pre-judged; threshold unused
                comparison="le",
                budget=1.0 - hit_rate_target,
                windows=windows,
                description="embedding-cache hit rate",
            )
        )
    return slos


@dataclass(frozen=True)
class EpochAnomaly:
    """One epoch flagged as anomalously slow."""

    epoch: int
    seconds: float
    median: float
    mad: float
    z: float


def _median(ordered: Sequence[float]) -> float:
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


class EpochTimeAnomalyDetector:
    """Rolling median + MAD z-score over recent epoch times.

    The median/MAD pair is robust: one straggler epoch neither masks
    itself nor inflates the baseline the way a mean/stddev would. The
    z-score uses the 0.6745 consistency constant (MAD ~= 0.6745 sigma
    for a normal distribution), so ``threshold=3.5`` reads as "3.5
    sigma slower than typical". Only slow epochs are anomalies — fast
    ones are good news. The MAD is floored at ``mad_floor`` of the
    median so near-identical epochs (MAD at or around 0 — the
    deterministic simulator's normal state) don't flag float dust: with
    the defaults an epoch must run at least ~5% over the median before
    it can fire at all.
    """

    def __init__(self, window: int = 16, threshold: float = 3.5,
                 min_epochs: int = 5, mad_floor: float = 0.01) -> None:
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if min_epochs < 2:
            raise ConfigurationError(
                f"min_epochs must be >= 2, got {min_epochs}"
            )
        if threshold <= 0:
            raise ConfigurationError(
                f"threshold must be > 0, got {threshold}"
            )
        if mad_floor <= 0:
            raise ConfigurationError(
                f"mad_floor must be > 0, got {mad_floor}"
            )
        self.window = window
        self.threshold = threshold
        self.min_epochs = min_epochs
        self.mad_floor = mad_floor
        self._history: Deque[float] = deque(maxlen=window)
        self.anomalies: List[EpochAnomaly] = []

    def update(self, epoch: int, seconds: float) -> Optional[EpochAnomaly]:
        """Score one epoch; returns the anomaly if it fired.

        The value always joins the rolling history afterwards (a regime
        change — say a permanently shrunken world after recovery —
        stops flagging once the window turns over).
        """
        anomaly = None
        if len(self._history) >= self.min_epochs:
            ordered = sorted(self._history)
            median = _median(ordered)
            mad = _median(sorted(abs(x - median) for x in ordered))
            scale = max(mad, self.mad_floor * max(abs(median), 1e-12))
            z = 0.6745 * (seconds - median) / scale
            if z > self.threshold:
                anomaly = EpochAnomaly(
                    epoch=epoch, seconds=seconds, median=median, mad=mad, z=z
                )
                self.anomalies.append(anomaly)
        self._history.append(float(seconds))
        return anomaly
