"""Always-on flight recorder: a bounded ring of recent telemetry records.

Production systems keep a black box: a fixed-size buffer of the most
recent events that costs (almost) nothing while everything is healthy
and is dumped the moment something breaks. :class:`FlightRecorder` is
that buffer for the simulator — engine ops, collective comm records,
fault injections, cache-generation bumps, degrades, SLO breaches — all
land in one ``deque(maxlen=capacity)``, so memory is bounded no matter
how long a ``repro dynamic run`` session serves.

A *postmortem bundle* (:meth:`FlightRecorder.dump`) freezes the ring
plus the metrics registry and recent spans into one JSON-able dict.
:class:`~repro.resilience.recovery.ElasticTrainer` dumps one when a
recovery fires; :class:`~repro.serve.server.ServingEngine` dumps one
when an SLO breaches. :func:`bundle_to_chrome_trace` replays a bundle
into a merged Perfetto timeline (per-section engine rows + the span
tree), so a chaos run that died at 3am is debuggable from its bundle
alone.

The hot path is ``record_op`` — one tuple append per engine op. Records
keep the original :class:`~repro.device.engine.TraceEvent` objects and
only convert to JSON-able dicts at dump time.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Dict, List, Optional, Union

from repro.device.engine import TraceEvent
from repro.errors import ConfigurationError
from repro.telemetry.spans import Span, Tracer

PathLike = Union[str, os.PathLike]

FLIGHT_BUNDLE_FORMAT = "repro-flight-bundle"

#: default ring capacity (records, not bytes); ~a few epochs of ops.
DEFAULT_CAPACITY = 8192

#: newest spans carried into a bundle (the tail is where the fault is).
_MAX_BUNDLE_SPANS = 512


class FlightRecorder:
    """Bounded ring buffer of recent telemetry records + bundle dumps."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        auto_dump_dir: Optional[PathLike] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"flight-recorder capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        #: (kind, section, payload) tuples; payload is a TraceEvent for
        #: kind "op", a dict for everything else.
        self._ring = deque(maxlen=capacity)
        #: bundles dumped so far, in order (also written to
        #: ``auto_dump_dir`` when set).
        self.bundles: List[dict] = []
        self.auto_dump_dir = auto_dump_dir
        self.records_total = 0
        self.dumps_total = 0

    def __len__(self) -> int:
        return len(self._ring)

    # -- recording (hot path) ------------------------------------------------

    def record_op(self, ev: TraceEvent, section: str = "run") -> None:
        """Record one engine op; called by ``Telemetry.on_op``."""
        self._ring.append(("op", section, ev))
        self.records_total += 1

    def record_comm(self, link: str, seconds: float, nbytes: float) -> None:
        self._ring.append(
            ("comm", None,
             {"link": link, "seconds": seconds, "nbytes": nbytes})
        )
        self.records_total += 1

    def record(self, kind: str, time: float = 0.0, **payload) -> None:
        """Record a generic annotation (fault, cache_gen, degrade, ...)."""
        self._ring.append((kind, None, {"time": float(time), **payload}))
        self.records_total += 1

    # -- introspection -------------------------------------------------------

    def records(self) -> List[dict]:
        """The ring as JSON-able dicts, oldest first."""
        out: List[dict] = []
        for kind, section, payload in self._ring:
            if kind == "op":
                ev = payload
                out.append(
                    {
                        "kind": "op",
                        "section": section,
                        "device": ev.device,
                        "stream": ev.stream,
                        "name": ev.name,
                        "category": ev.category,
                        "start": ev.start,
                        "end": ev.end,
                        "stage": ev.stage,
                        "nbytes": ev.nbytes,
                        "correlation": ev.correlation,
                        "flops": ev.flops,
                    }
                )
            else:
                out.append({"kind": kind, **payload})
        return out

    def counts(self) -> Dict[str, int]:
        """Record count per kind currently in the ring."""
        out: Dict[str, int] = {}
        for kind, _section, _payload in self._ring:
            out[kind] = out.get(kind, 0) + 1
        return out

    # -- postmortem bundles --------------------------------------------------

    def dump(
        self,
        trigger: str,
        time: float = 0.0,
        telemetry=None,
        meta: Optional[dict] = None,
        path: Optional[PathLike] = None,
    ) -> dict:
        """Freeze the ring into a postmortem bundle.

        ``telemetry`` (a :class:`~repro.telemetry.Telemetry` hub) adds
        the flattened metrics registry and the newest closed spans. The
        bundle is kept in :attr:`bundles` and written to ``path`` (or a
        ``postmortem-<seq>-<trigger>.json`` under :attr:`auto_dump_dir`
        when configured).
        """
        from repro.telemetry.export import span_to_record

        bundle: dict = {
            "format": FLIGHT_BUNDLE_FORMAT,
            "meta": {
                "trigger": trigger,
                "time": float(time),
                "seq": self.dumps_total,
                **(meta or {}),
            },
            "records": self.records(),
        }
        if telemetry is not None:
            bundle["meta"]["run_id"] = telemetry.run_id
            bundle["metrics"] = telemetry.registry.flatten()
            bundle["spans"] = [
                span_to_record(s)
                for s in telemetry.tracer.spans[-_MAX_BUNDLE_SPANS:]
                if s.closed
            ]
        self.dumps_total += 1
        if path is None and self.auto_dump_dir is not None:
            path = os.path.join(
                os.fspath(self.auto_dump_dir),
                f"postmortem-{bundle['meta']['seq']:03d}-{trigger}.json",
            )
        if path is not None:
            bundle["meta"]["path"] = os.fspath(path)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(bundle, fh, sort_keys=True)
        self.bundles.append(bundle)
        return bundle


def load_bundle(path: PathLike) -> dict:
    """Read a postmortem bundle back, with clear failures."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        raise ConfigurationError(f"flight bundle not found: {path}") from None
    except json.JSONDecodeError as err:
        raise ConfigurationError(
            f"malformed flight bundle {path}: {err}"
        ) from None
    if (
        not isinstance(payload, dict)
        or payload.get("format") != FLIGHT_BUNDLE_FORMAT
    ):
        raise ConfigurationError(
            f"{path} is not a flight bundle (format != "
            f"{FLIGHT_BUNDLE_FORMAT!r})"
        )
    return payload


def bundle_events(bundle: dict) -> Dict[str, List[TraceEvent]]:
    """Rebuild the bundle's op records into per-section trace lists."""
    sections: Dict[str, List[TraceEvent]] = {}
    for record in bundle.get("records", ()):
        if record.get("kind") != "op":
            continue
        sections.setdefault(record.get("section") or "run", []).append(
            TraceEvent(
                device=record["device"],
                stream=record["stream"],
                name=record["name"],
                category=record["category"],
                start=record["start"],
                end=record["end"],
                stage=record.get("stage"),
                nbytes=record.get("nbytes", 0),
                correlation=record.get("correlation"),
                flops=record.get("flops", 0.0),
            )
        )
    return sections


def bundle_spans(bundle: dict) -> Tracer:
    """Rebuild the bundle's span records into a (detached) tracer."""
    tracer = Tracer()
    for record in bundle.get("spans", ()):
        tracer.spans.append(
            Span(
                name=record["name"],
                start=record["start"],
                end=record["end"],
                span_id=record["span_id"],
                parent_id=record.get("parent_id"),
                correlation=record.get("correlation"),
                category=record.get("category", "span"),
                attrs=dict(record.get("attrs") or {}),
            )
        )
    return tracer


def bundle_to_chrome_trace(bundle: dict) -> List[dict]:
    """Replay a postmortem bundle into one merged Chrome timeline.

    Engine ops become per-section processes with disjoint pid/tid blocks
    (exactly as live :func:`~repro.telemetry.merged_chrome_trace` runs),
    and the bundled span tree rides along as the ``spans`` process.
    """
    from repro.profiling.trace_export import merge_chrome_traces
    from repro.telemetry.export import spans_to_chrome_events

    sections = bundle_events(bundle)
    tracer = bundle_spans(bundle)
    extra = spans_to_chrome_events(tracer) if tracer.spans else ()
    return merge_chrome_traces(sections, extra_events=extra)
