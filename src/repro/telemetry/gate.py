"""Perf-regression gating: diff a metrics snapshot against a baseline.

The gate compares flat ``name -> value`` maps with per-metric relative
tolerances. Baselines can be telemetry snapshots (written by
``repro telemetry run`` / :func:`write_snapshot`) or the repo's
benchmark emissions (``BENCH_epoch_replay.json``, ``BENCH_serving.json``,
``BENCH_telemetry.json``) — arbitrary nested JSON is flattened into
dotted paths so any numeric leaf becomes a gateable metric.

Semantics: a metric present in the baseline but missing from the
current run FAILS (a deleted measurement hides regressions); a new
metric only noted. Tolerance patterns are ``fnmatch`` globs matched
against the flattened name, first match wins, so a config can say
``{"*_p99*": 0.15, "repro_flops_total": 0.0}``.
"""

from __future__ import annotations

import fnmatch
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

PathLike = Union[str, os.PathLike]

SNAPSHOT_FORMAT = "repro-telemetry-snapshot"

#: default relative tolerance: 5%, matching the instrumentation budget.
DEFAULT_RTOL = 0.05


def flatten_numeric(obj, prefix: str = "") -> Dict[str, float]:
    """Flatten nested dicts/lists to ``a.b.0.c -> float`` leaves.

    Non-numeric leaves are dropped; bools are not numbers here.
    """
    out: Dict[str, float] = {}
    if isinstance(obj, Mapping):
        for key in obj:
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(obj[key], path))
    elif isinstance(obj, (list, tuple)):
        for i, item in enumerate(obj):
            path = f"{prefix}.{i}" if prefix else str(i)
            out.update(flatten_numeric(item, path))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    return out


def load_metrics(path: PathLike) -> Dict[str, float]:
    """Load a baseline: snapshot files use their ``metrics`` map, any
    other JSON (BENCH_*.json) is flattened wholesale.

    Missing, unreadable, malformed, or metric-free files raise
    :class:`~repro.errors.ConfigurationError` — the CLI turns that into
    a one-line message and a non-zero exit, not a traceback.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        raise ConfigurationError(f"metrics file not found: {path}") from None
    except IsADirectoryError:
        raise ConfigurationError(
            f"metrics path is a directory, expected a JSON file: {path}"
        ) from None
    except json.JSONDecodeError as err:
        raise ConfigurationError(
            f"malformed JSON in metrics file {path}: {err}"
        ) from None
    except OSError as err:
        raise ConfigurationError(
            f"cannot read metrics file {path}: {err}"
        ) from None
    if isinstance(payload, Mapping) and payload.get("format") == SNAPSHOT_FORMAT:
        flat = flatten_numeric(payload.get("metrics", {}))
    else:
        flat = flatten_numeric(payload)
    if not flat:
        raise ConfigurationError(
            f"no numeric metrics found in {path} (empty or non-numeric JSON)"
        )
    return flat


def write_snapshot(
    path: PathLike, metrics: Mapping[str, float], meta: Optional[dict] = None
) -> None:
    payload = {
        "format": SNAPSHOT_FORMAT,
        "meta": dict(meta or {}),
        "metrics": dict(metrics),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


@dataclass
class Deviation:
    name: str
    baseline: Optional[float]
    current: Optional[float]
    rtol: float

    def describe(self) -> str:
        if self.current is None:
            return f"{self.name}: missing from current run (baseline {self.baseline:g})"
        if self.baseline is None:
            return f"{self.name}: new metric (current {self.current:g})"
        rel = _relative_delta(self.baseline, self.current)
        return (
            f"{self.name}: {self.baseline:g} -> {self.current:g} "
            f"({rel:+.1%}, tolerance ±{self.rtol:.0%})"
        )


@dataclass
class GateResult:
    passed: bool
    failures: List[Deviation] = field(default_factory=list)
    new_metrics: List[Deviation] = field(default_factory=list)
    compared: int = 0

    def report(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"telemetry gate: {verdict} ({self.compared} metrics compared)"]
        for dev in self.failures:
            lines.append(f"  FAIL {dev.describe()}")
        for dev in self.new_metrics:
            lines.append(f"  note {dev.describe()}")
        return "\n".join(lines)


def _relative_delta(baseline: float, current: float) -> float:
    if baseline == 0.0:
        return 0.0 if current == 0.0 else float("inf")
    return (current - baseline) / abs(baseline)


def resolve_tolerance(
    name: str,
    tolerances: Optional[Mapping[str, float]],
    default_rtol: float,
) -> float:
    """First-match-wins fnmatch lookup over the tolerance patterns."""
    if tolerances:
        for pattern, rtol in tolerances.items():
            if fnmatch.fnmatchcase(name, pattern):
                return rtol
    return default_rtol


def diff_metrics(
    baseline: Mapping[str, float],
    current: Mapping[str, float],
    default_rtol: float = DEFAULT_RTOL,
    tolerances: Optional[Mapping[str, float]] = None,
    ignore: Sequence[str] = (),
) -> GateResult:
    """Gate ``current`` against ``baseline``; see module docstring."""
    result = GateResult(passed=True)
    for name in sorted(baseline):
        if any(fnmatch.fnmatchcase(name, pat) for pat in ignore):
            continue
        rtol = resolve_tolerance(name, tolerances, default_rtol)
        base = baseline[name]
        if name not in current:
            result.failures.append(Deviation(name, base, None, rtol))
            continue
        result.compared += 1
        cur = current[name]
        if abs(_relative_delta(base, cur)) > rtol:
            result.failures.append(Deviation(name, base, cur, rtol))
    for name in sorted(set(current) - set(baseline)):
        if any(fnmatch.fnmatchcase(name, pat) for pat in ignore):
            continue
        result.new_metrics.append(
            Deviation(name, None, current[name], default_rtol)
        )
    result.passed = not result.failures
    return result


def gate_against_file(
    baseline_path: PathLike,
    current: Mapping[str, float],
    default_rtol: float = DEFAULT_RTOL,
    tolerances: Optional[Mapping[str, float]] = None,
    ignore: Sequence[str] = (),
) -> GateResult:
    return diff_metrics(
        load_metrics(baseline_path),
        current,
        default_rtol=default_rtol,
        tolerances=tolerances,
        ignore=ignore,
    )
