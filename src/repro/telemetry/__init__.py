"""repro.telemetry — unified metrics, spans, and perf-regression gating.

One :class:`MetricsRegistry` + :class:`Tracer` pair (bundled by the
:class:`Telemetry` hub) that training, plan replay, resilience, and
serving all report through; exporters for Prometheus text, JSONL event
logs, and merged Chrome traces; a regression gate that diffs a run's
snapshot against BENCH_*.json baselines; critical-path attribution
(:mod:`~repro.telemetry.critpath`), an always-on flight recorder
(:mod:`~repro.telemetry.flightrec`), and SLO burn-rate / epoch-anomaly
monitors (:mod:`~repro.telemetry.slo`). See docs/observability.md.
"""

from repro.telemetry.core import Telemetry
from repro.telemetry.critpath import (
    CritPathReport,
    PathStep,
    critical_path,
    critical_path_from_plan,
    critpath_to_chrome_events,
    publish_critpath,
)
from repro.telemetry.derived import sample_epoch
from repro.telemetry.export import (
    merged_chrome_trace,
    render_summary,
    spans_to_chrome_events,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.telemetry.flightrec import (
    FlightRecorder,
    bundle_events,
    bundle_spans,
    bundle_to_chrome_trace,
    load_bundle,
)
from repro.telemetry.gate import (
    DEFAULT_RTOL,
    GateResult,
    diff_metrics,
    flatten_numeric,
    gate_against_file,
    load_metrics,
    write_snapshot,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    nearest_rank,
)
from repro.telemetry.slo import (
    SLO,
    EpochAnomaly,
    EpochTimeAnomalyDetector,
    SLOBreach,
    SLOMonitor,
    default_serving_slos,
)
from repro.telemetry.spans import Span, Tracer

__all__ = [
    "Counter",
    "CritPathReport",
    "DEFAULT_RTOL",
    "EpochAnomaly",
    "EpochTimeAnomalyDetector",
    "FlightRecorder",
    "Gauge",
    "GateResult",
    "Histogram",
    "MetricsRegistry",
    "PathStep",
    "SLO",
    "SLOBreach",
    "SLOMonitor",
    "Span",
    "Telemetry",
    "Tracer",
    "bundle_events",
    "bundle_spans",
    "bundle_to_chrome_trace",
    "critical_path",
    "critical_path_from_plan",
    "critpath_to_chrome_events",
    "default_serving_slos",
    "diff_metrics",
    "flatten_numeric",
    "gate_against_file",
    "load_bundle",
    "load_metrics",
    "merged_chrome_trace",
    "nearest_rank",
    "publish_critpath",
    "render_summary",
    "sample_epoch",
    "spans_to_chrome_events",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
    "write_snapshot",
]
