"""repro.telemetry — unified metrics, spans, and perf-regression gating.

One :class:`MetricsRegistry` + :class:`Tracer` pair (bundled by the
:class:`Telemetry` hub) that training, plan replay, resilience, and
serving all report through; exporters for Prometheus text, JSONL event
logs, and merged Chrome traces; and a regression gate that diffs a
run's snapshot against BENCH_*.json baselines. See docs/observability.md.
"""

from repro.telemetry.core import Telemetry
from repro.telemetry.derived import sample_epoch
from repro.telemetry.export import (
    merged_chrome_trace,
    render_summary,
    spans_to_chrome_events,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.telemetry.gate import (
    DEFAULT_RTOL,
    GateResult,
    diff_metrics,
    flatten_numeric,
    gate_against_file,
    load_metrics,
    write_snapshot,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    nearest_rank,
)
from repro.telemetry.spans import Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_RTOL",
    "Gauge",
    "GateResult",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "Tracer",
    "diff_metrics",
    "flatten_numeric",
    "gate_against_file",
    "load_metrics",
    "merged_chrome_trace",
    "nearest_rank",
    "render_summary",
    "sample_epoch",
    "spans_to_chrome_events",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
    "write_snapshot",
]
