"""The process-wide metrics vocabulary: counters, gauges, histograms.

One :class:`MetricsRegistry` is the single pipeline every subsystem
reports through — training, plan replay, resilience, and serving all
register instruments here, so an operator (or the regression gate) sees
one coherent namespace instead of per-module private state.

Instruments follow the Prometheus data model:

* a **counter** only goes up (op counts, bytes moved, retries);
* a **gauge** is a point-in-time sample (loss, overlap efficiency);
* a **histogram** keeps the *exact* observations and answers
  nearest-rank quantiles — the ``ceil(q/100 * n)``-th order statistic,
  the SLO-dashboard convention (a p99 is an observed value, never an
  interpolated blend). The serving layer's percentile math lives here
  now; :func:`repro.serve.metrics.latency_percentile` delegates.

Instruments may carry labels (``registry.counter("ops_total",
category="spmm")``); each distinct label set is its own series under a
shared family name, as in Prometheus.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: quantiles exported by default for every histogram (snapshot keys and
#: Prometheus ``quantile=`` labels).
DEFAULT_QUANTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)

#: observations a histogram keeps exactly before degrading to a bounded
#: reservoir. Far above anything tier-1 runs observe, so committed BENCH
#: numbers stay bit-identical; long `repro dynamic run` sessions stop
#: growing without bound.
DEFAULT_MAX_EXACT = 65536

#: reservoir size after degradation (Algorithm R, seeded — deterministic).
RESERVOIR_SIZE = 4096

LabelKey = Tuple[Tuple[str, str], ...]


def nearest_rank(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile ``q`` (0 < q <= 100) of *sorted* values."""
    if not len(ordered):
        raise ConfigurationError("percentile of an empty value set")
    if not (0.0 < q <= 100.0):
        raise ConfigurationError(f"percentile must be in (0, 100], got {q}")
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter increments must be >= 0, got {amount}"
            )
        self.value += amount


class Gauge:
    """A point-in-time sample; set freely, up or down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Exact observations with nearest-rank quantiles — bounded.

    Keeps every observed value while the count stays at or below
    ``max_exact`` (the simulator's tier-1 runs never leave this regime,
    and exactness is what makes the regression gate trustworthy). Past
    the threshold the value list degrades once to a fixed-size uniform
    reservoir (Vitter's Algorithm R with a fixed seed, so runs stay
    deterministic): quantiles become sampled estimates, while ``count``,
    ``sum``, ``mean`` and ``max`` remain exact forever. The sorted view
    is cached and invalidated on observe.
    """

    __slots__ = ("_values", "_sorted", "sum", "_count", "_max",
                 "max_exact", "reservoir_size", "_rng")

    def __init__(
        self,
        max_exact: int = DEFAULT_MAX_EXACT,
        reservoir_size: int = RESERVOIR_SIZE,
    ) -> None:
        if reservoir_size < 1:
            raise ConfigurationError(
                f"reservoir_size must be >= 1, got {reservoir_size}"
            )
        if max_exact < reservoir_size:
            raise ConfigurationError(
                f"max_exact ({max_exact}) must be >= reservoir_size "
                f"({reservoir_size})"
            )
        self._values: List[float] = []
        self._sorted: Optional[List[float]] = None
        self.sum = 0.0
        self._count = 0
        self._max = float("-inf")
        self.max_exact = max_exact
        self.reservoir_size = reservoir_size
        self._rng: Optional[random.Random] = None

    @property
    def exact(self) -> bool:
        """True while every observation is still held individually."""
        return self._rng is None

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self.sum += value
        if value > self._max:
            self._max = value
        if self._rng is None:
            self._values.append(value)
            self._sorted = None
            if self._count > self.max_exact:
                self._degrade()
            return
        # Algorithm R: keep each of the n observations with prob k/n.
        j = self._rng.randrange(self._count)
        if j < self.reservoir_size:
            self._values[j] = value
            self._sorted = None

    def _degrade(self) -> None:
        rng = random.Random(0x5EED)
        self._values = rng.sample(self._values, self.reservoir_size)
        self._sorted = None
        self._rng = rng

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self.sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def values(self) -> List[float]:
        return list(self._values)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of everything observed (or sampled)."""
        if self._sorted is None:
            self._sorted = sorted(self._values)
        return nearest_rank(self._sorted, q)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """All series sharing one metric name (and kind, and help text)."""

    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.series: Dict[LabelKey, object] = {}

    def get(self, labels: LabelKey):
        instrument = self.series.get(labels)
        if instrument is None:
            instrument = self.series[labels] = _KINDS[self.kind]()
        return instrument


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_labels(labels: LabelKey) -> str:
    """Prometheus-style ``{k="v",...}`` rendering ('' when unlabeled)."""
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + body + "}"


class MetricsRegistry:
    """Registry of metric families; the unified telemetry namespace."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # -- instrument access ---------------------------------------------------

    def _family(self, name: str, kind: str, help: str) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(name, kind, help)
        elif family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as a {family.kind}, "
                f"requested as a {kind}"
            )
        else:
            if help and not family.help:
                family.help = help
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._family(name, "counter", help).get(_label_key(labels))

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._family(name, "gauge", help).get(_label_key(labels))

    def histogram(self, name: str, help: str = "", **labels: str) -> Histogram:
        return self._family(name, "histogram", help).get(_label_key(labels))

    # -- introspection -------------------------------------------------------

    def families(self) -> Iterator[_Family]:
        for name in sorted(self._families):
            yield self._families[name]

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def clear(self) -> None:
        self._families.clear()

    def flatten(
        self, quantiles: Sequence[float] = DEFAULT_QUANTILES
    ) -> Dict[str, float]:
        """Flat ``name{labels}`` -> value map of every series.

        Histograms expand into ``_count``/``_sum``/``_max`` plus one
        ``_p<q>`` entry per requested quantile — the shape the
        regression gate diffs.
        """
        out: Dict[str, float] = {}
        for family in self.families():
            for labels in sorted(family.series):
                instrument = family.series[labels]
                suffix = format_labels(labels)
                if family.kind == "histogram":
                    out[f"{family.name}_count{suffix}"] = float(instrument.count)
                    out[f"{family.name}_sum{suffix}"] = instrument.sum
                    if instrument.count:
                        out[f"{family.name}_max{suffix}"] = instrument.max
                        for q in quantiles:
                            key = f"{family.name}_p{q:g}{suffix}"
                            out[key] = instrument.percentile(q)
                else:
                    out[f"{family.name}{suffix}"] = instrument.value
        return out
