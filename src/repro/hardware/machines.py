"""Factory functions for the machines used in the paper's evaluation.

``dgx1()`` reproduces the NVIDIA DGX-1 (V100) hybrid cube-mesh: 8 GPUs,
6 NVLinks each at 25 GB/s per direction, with the asymmetric connectivity
reported by ``nvidia-smi topo -m`` (some neighbour pairs share two links).

``dgx_a100()`` reproduces the NVIDIA DGX-A100: 8 GPUs, 12 NVLinks each,
all attached to NVSwitch planes, giving 300 GB/s per-direction (600 GB/s
bidirectional) between any pair, as described in Section 6 of the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import GB, GiB, TB
from repro.errors import TopologyError
from repro.hardware.spec import GPUSpec, LinkSpec, MachineSpec

#: One NVLink 2.0/3.0 sub-link one-directional bandwidth, bytes/s.
NVLINK_BANDWIDTH = 25 * GB

V100 = GPUSpec(
    name="V100-SXM2-32GB",
    memory_bytes=32 * GiB,
    memory_bandwidth=900 * GB,
    peak_flops=15.7e12,
    l2_cache_bytes=6 * 2**20,
)

A100 = GPUSpec(
    name="A100-SXM4-80GB",
    memory_bytes=80 * GiB,
    memory_bandwidth=2 * TB,
    peak_flops=19.5e12,
    l2_cache_bytes=40 * 2**20,
)

#: DGX-1 (V100) hybrid cube-mesh connectivity: (gpu_a, gpu_b) -> link count.
#: Matches the nvidia-smi NV1/NV2 matrix; every GPU totals 6 links.
DGX1_LINK_COUNTS: Dict[Tuple[int, int], int] = {
    (0, 1): 1,
    (0, 2): 1,
    (0, 3): 2,
    (0, 4): 2,
    (1, 2): 2,
    (1, 3): 1,
    (1, 5): 2,
    (2, 3): 2,
    (2, 6): 1,
    (3, 7): 1,
    (4, 5): 1,
    (4, 6): 1,
    (4, 7): 2,
    (5, 6): 2,
    (5, 7): 1,
    (6, 7): 2,
}


def _symmetric_links(
    counts: Dict[Tuple[int, int], int], bandwidth: float
) -> Tuple[LinkSpec, ...]:
    """Expand an undirected link-count map into directed LinkSpecs."""
    links: List[LinkSpec] = []
    for (a, b), count in sorted(counts.items()):
        links.append(LinkSpec(src=a, dst=b, bandwidth=bandwidth, count=count))
        links.append(LinkSpec(src=b, dst=a, bandwidth=bandwidth, count=count))
    return tuple(links)


def dgx1() -> MachineSpec:
    """NVIDIA DGX-1 with 8x V100: hybrid cube-mesh, 6 NVLinks per GPU."""
    machine = MachineSpec(
        name="DGX-1-V100",
        gpu=V100,
        num_gpus=8,
        links=_symmetric_links(DGX1_LINK_COUNTS, NVLINK_BANDWIDTH),
        host_memory_bytes=512 * GiB,
    )
    _validate_link_budget(machine, links_per_gpu=6)
    return machine


def dgx_a100() -> MachineSpec:
    """NVIDIA DGX-A100 with 8x A100: NVSwitch, 12 NVLinks per GPU."""
    return MachineSpec(
        name="DGX-A100",
        gpu=A100,
        num_gpus=8,
        links=(),
        switch_bandwidth=12 * NVLINK_BANDWIDTH,
        host_memory_bytes=2 * TB,
    )


def single_gpu(gpu: GPUSpec = V100, name: str = "single-GPU") -> MachineSpec:
    """A one-GPU machine (no interconnect)."""
    return MachineSpec(name=name, gpu=gpu, num_gpus=1)


def uniform_machine(
    num_gpus: int,
    gpu: GPUSpec = V100,
    link_bandwidth: float = NVLINK_BANDWIDTH,
    links_per_gpu: int = 6,
    switched: bool = True,
    name: str = "uniform",
) -> MachineSpec:
    """A synthetic machine for tests and what-if studies.

    ``switched=True`` builds an NVSwitch-style crossbar with per-GPU
    injection bandwidth ``links_per_gpu * link_bandwidth``; otherwise an
    all-to-all mesh with the link budget spread evenly over the peers.
    """
    if num_gpus < 1:
        raise TopologyError("uniform_machine needs num_gpus >= 1")
    if switched or num_gpus == 1:
        return MachineSpec(
            name=name,
            gpu=gpu,
            num_gpus=num_gpus,
            switch_bandwidth=links_per_gpu * link_bandwidth if num_gpus > 1 else 0.0,
        )
    per_peer = links_per_gpu * link_bandwidth / (num_gpus - 1)
    counts = {(a, b): 1 for a in range(num_gpus) for b in range(a + 1, num_gpus)}
    return MachineSpec(
        name=name,
        gpu=gpu,
        num_gpus=num_gpus,
        links=_symmetric_links(counts, per_peer),
    )


def multi_node_cluster(
    num_nodes: int,
    node: Optional[MachineSpec] = None,
    nic_bandwidth: float = 25 * GB,
    nic_latency: float = 5e-6,
    name: Optional[str] = None,
) -> MachineSpec:
    """A cluster of identical single-node machines over an IB-style fabric.

    The paper's future-work direction (§7) — and the mechanism behind
    its motivating claim that full-batch GNN scaling "is blocked outside
    of the single machine regime": the per-node NIC (default 200 Gb/s
    InfiniBand = 25 GB/s) is shared by the node's 8 GPUs, two orders of
    magnitude below the aggregate intra-node NVLink bandwidth.

    Intra-node links/switch replicate the ``node`` template per node;
    inter-node traffic is modelled through ``nic_bandwidth``.
    """
    node = node or dgx1()
    if num_nodes < 1:
        raise TopologyError(f"need at least one node, got {num_nodes}")
    if node.node_size:
        raise TopologyError("node template must itself be single-node")
    links: List[LinkSpec] = []
    for k in range(num_nodes):
        offset = k * node.num_gpus
        for link in node.links:
            links.append(
                LinkSpec(
                    src=link.src + offset,
                    dst=link.dst + offset,
                    bandwidth=link.bandwidth,
                    count=link.count,
                    latency=link.latency,
                )
            )
    return MachineSpec(
        name=name or f"{num_nodes}x{node.name}",
        gpu=node.gpu,
        num_gpus=num_nodes * node.num_gpus,
        links=tuple(links),
        switch_bandwidth=node.switch_bandwidth,
        switch_latency=node.switch_latency,
        host_memory_bytes=node.host_memory_bytes * num_nodes,
        node_size=node.num_gpus,
        inter_node_bandwidth=nic_bandwidth if num_nodes > 1 else 0.0,
        inter_node_latency=nic_latency,
    )


def _validate_link_budget(machine: MachineSpec, links_per_gpu: int) -> None:
    """Assert every GPU uses exactly its physical NVLink port budget."""
    totals = [0] * machine.num_gpus
    for link in machine.links:
        totals[link.src] += link.count
    for rank, total in enumerate(totals):
        if total != links_per_gpu:
            raise TopologyError(
                f"{machine.name}: GPU {rank} has {total} links, "
                f"expected {links_per_gpu}"
            )


#: Registry of the machines the paper evaluates on.
MACHINES = {
    "dgx1": dgx1,
    "dgx-v100": dgx1,
    "dgx_a100": dgx_a100,
    "dgx-a100": dgx_a100,
}


def get_machine(name: str) -> MachineSpec:
    """Look up a machine factory by (case-insensitive) name."""
    key = name.lower()
    if key not in MACHINES:
        raise TopologyError(
            f"unknown machine {name!r}; available: {sorted(set(MACHINES))}"
        )
    return MACHINES[key]()
