"""Interconnect topology queries used by the collective cost model.

The collectives in :mod:`repro.comm` are costed against a *topology view*
of a :class:`~repro.hardware.spec.MachineSpec`. The model follows the
arithmetic the paper itself uses in Section 5.1:

* NCCL builds one ring per physical link, so a large pipelined broadcast
  or (all)reduce over a set of GPUs proceeds at the **aggregate intra-set
  link bandwidth of the most link-poor member**. On DGX-1 a collective
  over all 8 GPUs can use all 6 NVLinks of each GPU (the paper's
  ``8 * nd / (8 * 6l)`` term); restricted to a 4-GPU quad only 4 links
  remain (``2 * nd / (4 * 4l)``).
* On a **switched** machine (DGX-A100/NVSwitch) any subset of GPUs can
  exchange data at the full per-GPU injection bandwidth simultaneously
  (all 12 links, the paper's ``nd / (4 * 12l)`` terms).
* The 1.5D algorithm's inter-group reduction is limited by the links
  crossing the group boundary — 2 per GPU pair on DGX-1, the full switch
  on DGX-A100 — exposed here as :meth:`p2p_bandwidth` and
  :meth:`bisection_bandwidth`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import TopologyError
from repro.hardware.spec import MachineSpec


class Topology:
    """Bandwidth/latency queries over a machine's interconnect."""

    def __init__(self, machine: MachineSpec, fault_injector=None):
        self.machine = machine
        #: optional :class:`repro.resilience.FaultInjector` consulted for
        #: time-dependent link degradation (None = pristine links).
        self.fault_injector = fault_injector
        # aggregated directed adjacency: src -> dst -> total bandwidth
        self._adj: Dict[int, Dict[int, float]] = {}
        for link in machine.links:
            row = self._adj.setdefault(link.src, {})
            row[link.dst] = row.get(link.dst, 0.0) + link.total_bandwidth
        # the machine (links, nodes, switch) is frozen after construction
        # and fault degradation is applied by callers via
        # :meth:`bandwidth_factor`, so these pure queries memoize exactly.
        # Collectives hit them once per rendezvous — the dominant Python
        # cost of an eager epoch at P=8 before caching.
        self._collective_bw_cache: Dict[tuple, float] = {}
        self._p2p_latency_cache: Dict[tuple, float] = {}

    def bandwidth_factor(
        self, time: float, ranks: Optional[Sequence[int]] = None
    ) -> float:
        """Injected bandwidth multiplier in (0, 1] for a transfer at ``time``.

        1.0 when no fault injector is attached or no degradation window
        is active — callers can skip rescaling in that case to keep
        fault-free timing arithmetic bit-identical.
        """
        injector = self.fault_injector
        if injector is None or injector.is_trivial:
            return 1.0
        return injector.bandwidth_factor(time, ranks)

    # -- point to point ----------------------------------------------------

    def p2p_bandwidth(self, src: int, dst: int) -> float:
        """One-directional bandwidth between a GPU pair.

        On a switch machine this is the injection bandwidth. On a mesh it
        is the direct-link bandwidth; pairs without a direct link are
        routed through one intermediate GPU at half the slowest link rate
        (store-and-forward halves effective bandwidth). Cross-node pairs
        go through the node NIC.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise TopologyError("p2p bandwidth of a rank with itself is undefined")
        if self.machine.node_of(src) != self.machine.node_of(dst):
            return self.machine.inter_node_bandwidth
        if self.machine.has_switch:
            return self.machine.switch_bandwidth
        direct = self._adj.get(src, {}).get(dst, 0.0)
        if direct > 0.0:
            return direct
        slowest = min((l.total_bandwidth for l in self.machine.links), default=0.0)
        if slowest == 0.0:
            raise TopologyError(f"{self.machine.name}: mesh machine without links")
        return slowest / 2.0

    def p2p_latency(self, src: int, dst: int) -> float:
        """Latency of the route between ``src`` and ``dst``."""
        key = (src, dst)
        cached = self._p2p_latency_cache.get(key)
        if cached is not None:
            return cached
        self._check_rank(src)
        self._check_rank(dst)
        if self.machine.node_of(src) != self.machine.node_of(dst):
            value = self.machine.inter_node_latency
        elif self.machine.has_switch:
            value = self.machine.switch_latency
        else:
            links = self.machine.links_between(src, dst)
            if not links:
                # routed through an intermediate GPU: two hops.
                value = 2 * min(
                    (l.latency for l in self.machine.links), default=1.5e-6
                )
            else:
                value = min(l.latency for l in links)
        self._p2p_latency_cache[key] = value
        return value

    # -- collective bandwidth ----------------------------------------------

    def intra_set_bandwidth(self, rank: int, ranks: Sequence[int]) -> float:
        """Aggregate link bandwidth from ``rank`` to the other GPUs in ``ranks``."""
        self._check_rank(rank)
        if self.machine.has_switch:
            return self.machine.switch_bandwidth
        others = {int(r) for r in ranks if int(r) != rank}
        row = self._adj.get(rank, {})
        return sum(bw for dst, bw in row.items() if dst in others)

    def collective_bandwidth(self, ranks: Sequence[int]) -> float:
        """Effective per-GPU bandwidth of a pipelined collective over ``ranks``.

        NCCL multi-ring idealisation: the slowest member's aggregate
        intra-set bandwidth bounds the whole collective. When the set
        spans several nodes, every byte must also cross the node NICs,
        which are *shared* by the node's participating GPUs — this is
        the bandwidth cliff that blocks full-batch GNN scaling beyond a
        single machine (the paper's motivating observation, and
        CAGNET's measured result).
        """
        key = tuple(int(r) for r in ranks)
        cached = self._collective_bw_cache.get(key)
        if cached is not None:
            return cached
        value = self._collective_bandwidth_uncached(key)
        self._collective_bw_cache[key] = value
        return value

    def _collective_bandwidth_uncached(self, ranks: Sequence[int]) -> float:
        rank_list = self._check_ranks(ranks)
        if len(rank_list) == 1:
            return float("inf")
        nodes: Dict[int, int] = {}
        for r in rank_list:
            node = self.machine.node_of(r)
            nodes[node] = nodes.get(node, 0) + 1
        if len(nodes) > 1:
            # per-GPU share of the busiest node's NIC bounds the ring.
            nic_share = self.machine.inter_node_bandwidth / max(nodes.values())
            intra = self._intra_node_collective_bound(rank_list)
            return min(intra, nic_share)
        if self.machine.has_switch:
            return self.machine.switch_bandwidth
        bws = [self.intra_set_bandwidth(r, rank_list) for r in rank_list]
        slowest = min(bws)
        if slowest == 0.0:
            # Some member is isolated within the set: fall back to routing
            # through GPUs outside the set at half the slowest link rate.
            slowest = (
                min((l.total_bandwidth for l in self.machine.links), default=0.0)
                / 2.0
            )
            if slowest == 0.0:
                raise TopologyError(
                    f"{self.machine.name}: no connectivity for ranks {rank_list!r}"
                )
        return slowest

    def _intra_node_collective_bound(self, rank_list: Sequence[int]) -> float:
        """Per-GPU intra-node forwarding bound for a multi-node ring."""
        if self.machine.has_switch:
            return self.machine.switch_bandwidth
        return min(self.machine.injection_bandwidth(r) for r in rank_list)

    def broadcast_bandwidth(self, root: int, ranks: Sequence[int]) -> float:
        """Effective bandwidth of a pipelined broadcast from ``root``."""
        rank_list = self._check_ranks(ranks)
        if root not in rank_list:
            raise TopologyError(f"broadcast root {root} not in ranks {ranks!r}")
        return self.collective_bandwidth(rank_list)

    def allreduce_bandwidth(self, ranks: Sequence[int]) -> float:
        """Effective bandwidth of a ring allreduce over ``ranks``.

        Ring allreduce moves ``2 (P-1)/P`` bytes per element per rank; the
        caller applies that volume factor, this returns the rate.
        """
        return self.collective_bandwidth(ranks)

    def bisection_bandwidth(
        self, group_a: Sequence[int], group_b: Sequence[int]
    ) -> float:
        """Aggregate one-directional bandwidth from ``group_a`` to ``group_b``.

        Used by the 1.5D CAGNET model (Section 5.1): the inter-replica
        reduction is limited by the links crossing the group boundary — on
        DGX-1 that is 2 links per GPU pair, on DGX-A100 the full switch.
        """
        a = {int(r) for r in group_a}
        b = {int(r) for r in group_b}
        if a & b:
            raise TopologyError("bisection groups overlap")
        for r in a | b:
            self._check_rank(r)
        nodes_a = {self.machine.node_of(r) for r in a}
        nodes_b = {self.machine.node_of(r) for r in b}
        if nodes_a.isdisjoint(nodes_b) and len(nodes_a | nodes_b) > 1:
            # groups live on different nodes: NICs of the smaller side.
            return self.machine.inter_node_bandwidth * min(len(nodes_a), len(nodes_b))
        if self.machine.has_switch:
            return self.machine.switch_bandwidth * min(len(a), len(b))
        return sum(
            l.total_bandwidth for l in self.machine.links if l.src in a and l.dst in b
        )

    # -- internals -----------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.machine.num_gpus):
            raise TopologyError(
                f"rank {rank} out of range for {self.machine.name} "
                f"({self.machine.num_gpus} GPUs)"
            )

    def _check_ranks(self, ranks: Sequence[int]) -> List[int]:
        rank_list = sorted(int(r) for r in ranks)
        if len(set(rank_list)) != len(rank_list):
            raise TopologyError(f"duplicate ranks: {ranks!r}")
        if not rank_list:
            raise TopologyError("empty rank set")
        for r in rank_list:
            self._check_rank(r)
        return rank_list
