"""Hardware model: GPU specs, interconnect topologies, machine factories."""

from repro.hardware.spec import GPUSpec, LinkSpec, MachineSpec
from repro.hardware.topology import Topology
from repro.hardware.machines import (
    dgx1,
    dgx_a100,
    single_gpu,
    uniform_machine,
    multi_node_cluster,
    MACHINES,
    get_machine,
)

__all__ = [
    "GPUSpec",
    "LinkSpec",
    "MachineSpec",
    "Topology",
    "dgx1",
    "dgx_a100",
    "single_gpu",
    "uniform_machine",
    "multi_node_cluster",
    "MACHINES",
    "get_machine",
]
