"""Dataclasses describing GPUs, links and machines.

The numbers mirror Section 6 of the paper:

* **V100** (DGX-1): 32 GB HBM2 at 900 GB/s, 6 NVLink ports, each link
  25 GB/s per direction; peak FP32 throughput 15.7 TFLOP/s.
* **A100** (DGX-A100): 80 GB HBM2e at 2 TB/s, 12 NVLink ports connected to
  an NVSwitch, 600 GB/s bidirectional peer bandwidth; peak FP32 19.5 TFLOP/s.

The *effective* rates used by the cost model are derated from peak by
empirical efficiency factors (sparse kernels never reach peak), see
:mod:`repro.kernels.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import TopologyError


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model."""

    name: str
    #: Device memory capacity in bytes.
    memory_bytes: int
    #: Global (HBM) memory bandwidth in bytes/second.
    memory_bandwidth: float
    #: Peak dense FP32 throughput in FLOP/s.
    peak_flops: float
    #: Last-level (L2) cache size in bytes; drives the SpMM cache-blocking
    #: discount that produces the paper's super-linear speedups (Fig. 9).
    l2_cache_bytes: int
    #: Fixed per-kernel launch overhead in seconds.
    kernel_overhead: float = 4e-6
    #: Output elements needed to saturate the GPU (SMs x threads x ILP).
    #: Kernels smaller than this run at proportionally lower utilisation —
    #: the reason small graphs (Cora) stop scaling with more GPUs.
    saturation_elements: float = 1.5e6

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.memory_bandwidth <= 0:
            raise ValueError(f"invalid GPUSpec {self.name}: non-positive memory spec")
        if self.peak_flops <= 0 or self.l2_cache_bytes <= 0:
            raise ValueError(f"invalid GPUSpec {self.name}: non-positive compute spec")


@dataclass(frozen=True)
class LinkSpec:
    """One directed point-to-point link between two GPUs.

    ``bandwidth`` is the one-directional rate of the link in bytes/second.
    A physical NVLink "connection" in NVIDIA's terminology is a pair of
    such directed sub-links. Multi-link connections between the same GPU
    pair (as in DGX-1 where some neighbours share 2 NVLinks) are expressed
    with ``count > 1``.
    """

    src: int
    dst: int
    bandwidth: float
    count: int = 1
    latency: float = 1.5e-6

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise TopologyError(f"self-link on GPU {self.src}")
        if self.bandwidth <= 0 or self.count <= 0:
            raise TopologyError(f"invalid link {self.src}->{self.dst}")

    @property
    def total_bandwidth(self) -> float:
        """Aggregate one-directional bandwidth of this connection."""
        return self.bandwidth * self.count


@dataclass(frozen=True)
class MachineSpec:
    """A single-node multi-GPU machine.

    ``switch_bandwidth`` non-zero means GPUs are connected through a
    crossbar switch (NVSwitch): any pair can communicate at the full
    per-GPU injection bandwidth simultaneously. Otherwise the explicit
    ``links`` list defines a point-to-point mesh (DGX-1 style).
    """

    name: str
    gpu: GPUSpec
    num_gpus: int
    links: Tuple[LinkSpec, ...] = ()
    #: Per-GPU injection bandwidth into the switch, bytes/s (0 = no switch).
    #: With ``node_size`` set, the switch (and the ``links``) describe the
    #: *intra-node* fabric, replicated per node.
    switch_bandwidth: float = 0.0
    switch_latency: float = 1.5e-6
    #: Host (CPU) memory in bytes, used only for dataset staging accounting.
    host_memory_bytes: int = 512 * 2**30
    #: GPUs per node for multi-node clusters (None/0 = single node).
    node_size: int = 0
    #: Per-node NIC bandwidth shared by that node's GPUs, bytes/s.
    inter_node_bandwidth: float = 0.0
    #: One-way latency of an inter-node hop, seconds.
    inter_node_latency: float = 5e-6

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise TopologyError(f"{self.name}: need at least one GPU")
        for link in self.links:
            if not (0 <= link.src < self.num_gpus and 0 <= link.dst < self.num_gpus):
                raise TopologyError(
                    f"{self.name}: link {link.src}->{link.dst} references "
                    f"GPU outside [0, {self.num_gpus})"
                )
        if self.switch_bandwidth < 0:
            raise TopologyError(f"{self.name}: negative switch bandwidth")
        if self.node_size:
            if self.num_gpus % self.node_size != 0:
                raise TopologyError(
                    f"{self.name}: node_size {self.node_size} does not divide "
                    f"{self.num_gpus} GPUs"
                )
            if self.num_nodes > 1 and self.inter_node_bandwidth <= 0:
                raise TopologyError(
                    f"{self.name}: multi-node machine needs inter_node_bandwidth"
                )
            for link in self.links:
                if link.src // self.node_size != link.dst // self.node_size:
                    raise TopologyError(
                        f"{self.name}: explicit link {link.src}->{link.dst} "
                        f"crosses a node boundary; inter-node traffic goes "
                        f"through inter_node_bandwidth"
                    )

    @property
    def has_switch(self) -> bool:
        return self.switch_bandwidth > 0

    @property
    def num_nodes(self) -> int:
        if not self.node_size:
            return 1
        return self.num_gpus // self.node_size

    def node_of(self, rank: int) -> int:
        """The node hosting ``rank``."""
        if not (0 <= rank < self.num_gpus):
            raise TopologyError(f"rank {rank} out of range for {self.name}")
        return rank // self.node_size if self.node_size else 0

    def links_from(self, rank: int) -> List[LinkSpec]:
        """All directed links whose source is ``rank``."""
        return [l for l in self.links if l.src == rank]

    def links_between(self, src: int, dst: int) -> List[LinkSpec]:
        """Direct links from ``src`` to ``dst`` (may be empty)."""
        return [l for l in self.links if l.src == src and l.dst == dst]

    def injection_bandwidth(self, rank: int) -> float:
        """Total bandwidth at which ``rank`` can push data off-device."""
        if self.has_switch:
            return self.switch_bandwidth
        total = sum(l.total_bandwidth for l in self.links_from(rank))
        if total == 0:
            raise TopologyError(f"{self.name}: GPU {rank} has no outgoing links")
        return total
