"""Global constants shared across the library.

Units policy
------------
* bytes everywhere for memory (``GiB = 2**30``),
* seconds everywhere for time,
* FLOP/s and B/s for rates.

The default training dtype is float32 — matching the paper's C++/cuSPARSE
implementation — and index arrays are int32 for CSR (sufficient for every
graph in Table 1 except Papers' edge array, which uses int64 offsets).
"""

from __future__ import annotations

import numpy as np

# ---------------------------------------------------------------------------
# Data type policy
# ---------------------------------------------------------------------------

#: Default floating point dtype for features, weights and gradients.
FLOAT_DTYPE = np.float32

#: Default dtype for CSR column indices.
INDEX_DTYPE = np.int32

#: Default dtype for CSR row offsets (int64 so that graphs with more than
#: 2**31 edges, e.g. ogbn-papers100M with 1.61B edges, remain addressable).
OFFSET_DTYPE = np.int64

#: Size in bytes of the default float dtype.
FLOAT_SIZE = np.dtype(FLOAT_DTYPE).itemsize

#: Size in bytes of the default index dtype.
INDEX_SIZE = np.dtype(INDEX_DTYPE).itemsize

#: Size in bytes of the default offset dtype.
OFFSET_SIZE = np.dtype(OFFSET_DTYPE).itemsize

# ---------------------------------------------------------------------------
# Unit helpers
# ---------------------------------------------------------------------------

KiB = 2**10
MiB = 2**20
GiB = 2**30

KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

MICROSECOND = 1e-6
MILLISECOND = 1e-3


def gib(nbytes: float) -> float:
    """Convert a byte count to GiB (for reporting)."""
    return nbytes / GiB


def align_up(nbytes: int, alignment: int = 256) -> int:
    """Round ``nbytes`` up to the allocator alignment (CUDA uses 256 B)."""
    if nbytes < 0:
        raise ValueError(f"negative allocation size: {nbytes}")
    return ((nbytes + alignment - 1) // alignment) * alignment


#: Default allocator alignment in bytes (matches cudaMalloc granularity).
DEFAULT_ALIGNMENT = 256

#: Default RNG seed used by deterministic components when none is supplied.
DEFAULT_SEED = 0x5EED

# ---------------------------------------------------------------------------
# Resilience defaults (repro.resilience)
# ---------------------------------------------------------------------------

#: Watchdog timeout charged on the timeline when a collective's failure
#: is detected (NCCL's default watchdog is minutes; the simulation uses
#: a short value so chaos runs stay readable).
DEFAULT_COLLECTIVE_TIMEOUT = 1e-3

#: Default retry budget for transiently failing collectives.
DEFAULT_MAX_RETRIES = 3

#: First retry backoff in simulated seconds; doubles per attempt.
DEFAULT_BACKOFF_BASE = 100e-6

#: Host<->device staging bandwidth used to cost recovery checkpoints and
#: re-partitioning (PCIe 4.0 x16 effective rate, B/s).
DEFAULT_HOST_BANDWIDTH = 16e9
