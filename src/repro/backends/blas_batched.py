"""Batched-BLAS backend: stacked ``np.matmul`` for same-shape GeMM groups.

The 1D trainers submit one GeMM per rank per layer over identically
shaped row blocks (the uniform permuted partition makes the blocks the
same height). Stacking the group into a single 3-D ``np.matmul`` replaces
P interpreter round-trips and P small BLAS launches with one batched
call — the host analogue of ``cublasSgemmBatched``.

NumPy evaluates a 3-D matmul slice-by-slice with the same underlying
2-D GEMM kernel, so each output slice is bit-identical to the individual
2-D product (asserted by the parity suite; this is what lets the
``blas_batched`` backend share the numpy backend's bit-exact guarantee).

Groups with non-uniform shapes (ragged last blocks) are split into
per-shape runs: each run of two or more identically shaped operands is
stacked, stragglers go through the per-op loop.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.backends.base import KernelBackend, register_backend


class BlasBatchedBackend(KernelBackend):
    """Numpy semantics everywhere, stacked matmul for uniform GeMM groups."""

    name = "blas_batched"
    bit_identical = True

    #: stack only small operands: real batched BLAS takes pointer arrays,
    #: but the host analogue must copy into the 3-D staging buffers, and
    #: past this per-operand element count the copies cost more than the
    #: per-op dispatch they save (the per-op loop is then the faster
    #: bit-identical route).
    STACK_MAX_ELEMENTS = 8192

    def __init__(self) -> None:
        # Reused 3-D staging buffers for _stacked, keyed by the group's
        # shape/dtype signature: trainers submit the same group shapes
        # every epoch, so allocation would otherwise dominate stacking.
        # Contents never outlive a call (inputs are copied in, the
        # product is copied out before returning).
        self._stack_bufs: dict = {}

    def gemm_batch(
        self,
        ops: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        transpose_a: bool = False,
        transpose_b: bool = False,
        accumulate: bool = False,
    ) -> None:
        a0, b0, _ = ops[0]
        if len(ops) < 2 or max(a0.size, b0.size) > self.STACK_MAX_ELEMENTS:
            super().gemm_batch(ops, transpose_a=transpose_a,
                               transpose_b=transpose_b, accumulate=accumulate)
            return
        if self._uniform(ops):
            self._stacked(ops, transpose_a, transpose_b, accumulate)
            return
        # Ragged group (e.g. a remainder row block): stack each run of
        # identically shaped operands, loop the rest. Outputs are
        # distinct buffers, so per-shape-group execution order does not
        # affect results.
        groups: dict = {}
        for op in ops:
            a, b, _ = op
            groups.setdefault((a.shape, b.shape, a.dtype, b.dtype),
                              []).append(op)
        for group in groups.values():
            if len(group) >= 2:
                self._stacked(group, transpose_a, transpose_b, accumulate)
            else:
                a, b, out = group[0]
                self.gemm(a, b, out, transpose_a=transpose_a,
                          transpose_b=transpose_b, accumulate=accumulate)

    def _stacked(
        self,
        ops: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        transpose_a: bool,
        transpose_b: bool,
        accumulate: bool,
    ) -> None:
        a0, b0, _ = ops[0]
        n = len(ops)
        key = (n, a0.shape, b0.shape, a0.dtype.char, b0.dtype.char,
               transpose_a, transpose_b)
        bufs = self._stack_bufs.get(key)
        if bufs is None:
            m = a0.shape[1] if transpose_a else a0.shape[0]
            cols = b0.shape[0] if transpose_b else b0.shape[1]
            out_dtype = np.result_type(a0, b0)
            bufs = self._stack_bufs[key] = (
                np.empty((n,) + a0.shape, dtype=a0.dtype),
                np.empty((n,) + b0.shape, dtype=b0.dtype),
                np.empty((n, m, cols), dtype=out_dtype),
            )
        lhs, rhs, product = bufs
        for i, (a, b, _) in enumerate(ops):
            lhs[i] = a
            rhs[i] = b
        np.matmul(
            lhs.transpose(0, 2, 1) if transpose_a else lhs,
            rhs.transpose(0, 2, 1) if transpose_b else rhs,
            out=product,
        )
        for i, (_, _, out) in enumerate(ops):
            if accumulate:
                out += product[i]
            else:
                np.copyto(out, product[i])

    @staticmethod
    def _uniform(ops: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]]) -> bool:
        a0, b0, _ = ops[0]
        return all(
            a.shape == a0.shape and b.shape == b0.shape
            and a.dtype == a0.dtype and b.dtype == b0.dtype
            for a, b, _ in ops[1:]
        )


register_backend("blas_batched", BlasBatchedBackend)
