"""Pluggable kernel backends for the functional NumPy compute layer.

The discrete-event engine separates *time* (the roofline cost model)
from *results* (functional closures mutating device buffers in place).
This package makes the result side pluggable: a
:class:`~repro.backends.base.KernelBackend` supplies the array-level
primitives the kernel closures in :mod:`repro.kernels.ops` call —
dense GeMM, CSR SpMM, activation (+ fused epilogues) and their batched
forms — while the timing, stream, capture and telemetry machinery is
untouched. Backend choice flows through ``TrainerConfig.kernel_backend``
/ ``ServingConfig.kernel_backend`` (and the ``--backend`` CLI flags)
onto ``Engine.backend``, so no call site outside the registry changes.

Registered backends:

``numpy``
    The reference implementation — exactly the closure bodies the
    kernels always ran. Every other backend is validated against it.
``blas_batched``
    Batches groups of same-shape GeMMs (the per-rank frontier/layer
    loops) into single stacked ``np.matmul`` calls. Bit-identical to
    ``numpy`` per slice (batched BLAS runs the same kernel per matrix).
``numba``
    Optional compiled CSR SpMM (guarded import — registered only when
    numba is installed; parity is rtol-bounded, not bit-exact).
"""

from repro.backends.base import (
    BackendUnavailableError,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
)
from repro.backends.blas_batched import BlasBatchedBackend
from repro.backends.numba_backend import NUMBA_AVAILABLE, NumbaBackend
from repro.backends.numpy_backend import NumpyBackend

__all__ = [
    "BackendUnavailableError",
    "KernelBackend",
    "NumpyBackend",
    "BlasBatchedBackend",
    "NumbaBackend",
    "NUMBA_AVAILABLE",
    "available_backends",
    "get_backend",
    "register_backend",
    "registered_backends",
]
