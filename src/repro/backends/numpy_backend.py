"""The numpy reference backend.

This *is* the semantics every timed kernel always had — the base-class
primitives are the original closure bodies verbatim — so a trainer on
the ``numpy`` backend is bit-identical to the pre-registry code, and the
parity suite validates every other backend against this one.
"""

from __future__ import annotations

from repro.backends.base import KernelBackend, register_backend


class NumpyBackend(KernelBackend):
    """Reference implementation: inherits every base primitive unchanged."""

    name = "numpy"
    bit_identical = True


register_backend("numpy", NumpyBackend)
