"""Kernel-backend protocol and registry.

A :class:`KernelBackend` implements the *array-level* primitives the
timed kernels in :mod:`repro.kernels.ops` build their functional
closures from. Backends receive raw ``np.ndarray`` payloads (and
:class:`~repro.sparse.csr.CSRMatrix` tiles) — never engine, stream or
tensor objects — so they stay oblivious to the discrete-event layer and
can be swapped without touching any scheduler.

Backends register under a short name via :func:`register_backend` with
an optional availability probe (e.g. "is numba importable?"); resolution
via :func:`get_backend` caches one instance per name (backends are
stateless).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


class BackendUnavailableError(ConfigurationError):
    """Requested backend exists but its runtime dependency is missing."""


class KernelBackend:
    """Array-level kernel primitives; subclasses override what they speed up.

    The base-class bodies are *exactly* the reference numpy semantics;
    a subclass only overrides the primitives it implements differently
    (e.g. ``gemm_batch`` for stacked BLAS, ``spmm`` for a compiled
    kernel) and inherits the rest.
    """

    #: registry name, set on subclasses
    name = "base"
    #: True when results are bit-identical to the numpy reference (the
    #: parity suite asserts equality instead of allclose when set).
    bit_identical = True

    # -- dense -----------------------------------------------------------------

    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        out: np.ndarray,
        transpose_a: bool = False,
        transpose_b: bool = False,
        accumulate: bool = False,
    ) -> None:
        """``out (+)= op(a) @ op(b)``."""
        lhs = a.T if transpose_a else a
        rhs = b.T if transpose_b else b
        product = lhs @ rhs
        if accumulate:
            out += product
        else:
            np.copyto(out, product)

    def gemm_batch(
        self,
        ops: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        transpose_a: bool = False,
        transpose_b: bool = False,
        accumulate: bool = False,
    ) -> None:
        """A group of same-shape GeMMs ``[(a, b, out), ...]``.

        The reference implementation loops :meth:`gemm`; batched backends
        may stack the group into one kernel launch. All operands in one
        call share shapes, dtypes and flags (the callers batch per layer,
        where this holds by construction).
        """
        for a, b, out in ops:
            self.gemm(a, b, out, transpose_a=transpose_a,
                      transpose_b=transpose_b, accumulate=accumulate)

    # -- sparse ----------------------------------------------------------------

    def spmm(self, tile, dense: np.ndarray, out: np.ndarray,
             accumulate: bool = True) -> None:
        """``out (+)= tile @ dense`` for a CSR tile."""
        tile.spmm_into(dense, out, accumulate=accumulate)

    # -- activations / epilogues -----------------------------------------------

    def relu(self, x: np.ndarray) -> None:
        """In-place ReLU."""
        np.maximum(x, 0.0, out=x)

    def relu_grad(self, grad: np.ndarray, activated: np.ndarray) -> None:
        """In-place ``grad *= (activated > 0)``."""
        grad *= activated > 0

    def gemm_relu_grad(
        self,
        a: np.ndarray,
        b: np.ndarray,
        out: np.ndarray,
        transpose_b: bool = True,
    ) -> None:
        """``out = (a @ op(b)) * (out > 0)`` — GeMM with ReLU-mask epilogue."""
        rhs = b.T if transpose_b else b
        product = a @ rhs
        np.multiply(product, out > 0, out=out)


# -- registry ------------------------------------------------------------------

_REGISTRY: Dict[str, Tuple[Callable[[], KernelBackend],
                           Optional[Callable[[], bool]]]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}


def register_backend(
    name: str,
    factory: Callable[[], KernelBackend],
    available: Optional[Callable[[], bool]] = None,
) -> None:
    """Register ``factory`` under ``name``.

    ``available`` is an optional zero-arg probe; when it returns False,
    :func:`get_backend` raises :class:`BackendUnavailableError` and
    :func:`available_backends` omits the name.
    """
    _REGISTRY[name] = (factory, available)
    _INSTANCES.pop(name, None)


def get_backend(name: str) -> KernelBackend:
    """Resolve a backend by name (cached singleton per name)."""
    inst = _INSTANCES.get(name)
    if inst is not None:
        return inst
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; registered: "
            f"{sorted(_REGISTRY)}"
        )
    factory, available = entry
    if available is not None and not available():
        raise BackendUnavailableError(
            f"kernel backend {name!r} is registered but unavailable "
            f"(missing runtime dependency)"
        )
    inst = factory()
    _INSTANCES[name] = inst
    return inst


def available_backends() -> List[str]:
    """Names of registered backends whose availability probes pass."""
    out: List[str] = []
    for name, (_, available) in sorted(_REGISTRY.items()):
        if available is None or available():
            out.append(name)
    return out


def registered_backends() -> List[Tuple[str, bool]]:
    """Every registered ``(name, available)`` pair, sorted by name."""
    return [
        (name, available is None or bool(available()))
        for name, (_, available) in sorted(_REGISTRY.items())
    ]
