"""Optional numba backend: JIT-compiled CSR SpMM.

Numba is *not* a dependency of this project — the import is guarded and
the backend registers with an availability probe, so on machines without
numba ``get_backend("numba")`` raises
:class:`~repro.backends.base.BackendUnavailableError` and the parity
suite auto-skips. Compiled reductions reassociate float adds, so this
backend advertises ``bit_identical = False`` and is validated at
rtol=1e-5 against the numpy reference.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import KernelBackend, register_backend

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:
    _numba = None

NUMBA_AVAILABLE = _numba is not None

_spmm_jit = None


def _build_spmm_jit():  # pragma: no cover - requires numba
    """Compile the CSR SpMM kernel once, on first use."""
    global _spmm_jit
    if _spmm_jit is None:
        @_numba.njit(cache=True, fastmath=False)
        def spmm_kernel(indptr, indices, vals, dense, out):
            for i in range(indptr.shape[0] - 1):
                for p in range(indptr[i], indptr[i + 1]):
                    j = indices[p]
                    v = vals[p]
                    for c in range(dense.shape[1]):
                        out[i, c] += v * dense[j, c]

        _spmm_jit = spmm_kernel
    return _spmm_jit


class NumbaBackend(KernelBackend):
    """Numpy semantics everywhere except a compiled CSR SpMM."""

    name = "numba"
    bit_identical = False

    def spmm(self, tile, dense: np.ndarray, out: np.ndarray,
             accumulate: bool = True) -> None:  # pragma: no cover - requires numba
        if not accumulate:
            out.fill(0.0)
        if tile.nnz == 0:
            return
        kernel = _build_spmm_jit()
        kernel(tile.indptr, tile.indices, tile.vals,
               np.ascontiguousarray(dense), out)


register_backend("numba", NumbaBackend, available=lambda: NUMBA_AVAILABLE)
