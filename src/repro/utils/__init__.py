"""Small shared utilities (RNG plumbing, validation, formatting)."""

from repro.utils.rng import as_generator, split_generator
from repro.utils.validation import (
    check_positive,
    check_nonnegative,
    check_in_range,
    check_type,
)
from repro.utils.format import format_bytes, format_seconds, ascii_table

__all__ = [
    "as_generator",
    "split_generator",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_type",
    "format_bytes",
    "format_seconds",
    "ascii_table",
]
