"""Argument-validation helpers used across the library.

These raise plain :class:`ValueError`/:class:`TypeError` (not library
errors): they guard programmer mistakes at API boundaries, whereas the
:mod:`repro.errors` hierarchy describes *domain* failures (OOM, bad graph
files, invalid partitions).
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def check_positive(name: str, value: Union[int, float]) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value: Union[int, float]) -> None:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_in_range(
    name: str,
    value: Union[int, float],
    low: Union[int, float],
    high: Union[int, float],
    inclusive: bool = True,
) -> None:
    """Require ``low <= value <= high`` (or strict if ``inclusive=False``)."""
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, got {value!r}"
        )


def check_type(name: str, value: Any, types: Union[Type, Tuple[Type, ...]]) -> None:
    """Require ``isinstance(value, types)``."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
