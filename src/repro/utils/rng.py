"""Deterministic RNG plumbing.

All randomness in the library flows through :class:`numpy.random.Generator`
objects created here, so that every experiment is reproducible from a single
integer seed. Components that need several independent streams (e.g. the
BTER generator's block and edge phases) use :func:`split_generator`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.config import DEFAULT_SEED

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` maps to the library default seed (NOT entropy from the OS) so
    that un-seeded runs are still reproducible; pass an explicit generator
    to opt into externally controlled randomness.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def split_generator(rng: np.random.Generator, n: int) -> list:
    """Split ``rng`` into ``n`` statistically independent child generators.

    Children are derived by spawning seeds from the parent stream; the
    parent remains usable afterwards.
    """
    if n < 0:
        raise ValueError(f"cannot split into {n} generators")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
