"""Vectorised interval arithmetic over [start, end) span sets.

Shared by :mod:`repro.profiling.utilization` and
:mod:`repro.telemetry.derived`: both reduce an execution trace to
per-device busy time and exposed (un-overlapped) communication, which
are questions about unions and intersections of time intervals. The
NumPy formulation here keeps per-epoch telemetry sampling cheap enough
to run every epoch (the O(n) Python-loop versions showed up in the
instrumentation-overhead budget).

Touching intervals merge (``start <= previous end``), matching the
historical list-based helpers, and zero-duration spans are legal inputs
contributing zero measure.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def merge_spans(
    starts: np.ndarray, ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Union of possibly-overlapping intervals as sorted disjoint spans.

    Returns ``(ms, me)`` with ``ms`` strictly increasing and
    ``me[i] < ms[i+1]`` (touching inputs are coalesced).
    """
    starts = np.asarray(starts, dtype=np.float64)
    ends = np.asarray(ends, dtype=np.float64)
    if starts.size == 0:
        return starts.reshape(0), ends.reshape(0)
    order = np.argsort(starts, kind="stable")
    s = starts[order]
    e = ends[order]
    cummax_end = np.maximum.accumulate(e)
    first = np.empty(s.size, dtype=bool)
    first[0] = True
    # a new merged group begins where the next start lies strictly past
    # everything seen so far (touching spans coalesce, as <= merges).
    first[1:] = s[1:] > cummax_end[:-1]
    head = np.flatnonzero(first)
    tail = np.append(head[1:], s.size) - 1
    return s[head], cummax_end[tail]


def union_measure(starts: np.ndarray, ends: np.ndarray) -> float:
    """Total measure of the union of the given intervals."""
    ms, me = merge_spans(starts, ends)
    return float((me - ms).sum())


def _measure_before(ms: np.ndarray, me: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Measure of the merged span set intersected with ``(-inf, x)``.

    ``(ms, me)`` must come from :func:`merge_spans`. Vectorised over
    ``x``: at most the last started interval can be cut by ``x``.
    """
    prefix = np.concatenate(([0.0], np.cumsum(me - ms)))
    j = np.searchsorted(ms, x, side="right")
    overhang = np.where(
        j > 0, np.clip(me[np.maximum(j - 1, 0)] - x, 0.0, None), 0.0
    )
    return prefix[j] - overhang


def intersection_measure(
    a_starts: np.ndarray,
    a_ends: np.ndarray,
    b_starts: np.ndarray,
    b_ends: np.ndarray,
) -> float:
    """Measure of ``union(a) ∩ union(b)``."""
    ams, ame = merge_spans(a_starts, a_ends)
    bms, bme = merge_spans(b_starts, b_ends)
    if ams.size == 0 or bms.size == 0:
        return 0.0
    return float(
        (_measure_before(bms, bme, ame) - _measure_before(bms, bme, ams)).sum()
    )


def subtract_measure(
    base_starts: np.ndarray,
    base_ends: np.ndarray,
    hole_starts: np.ndarray,
    hole_ends: np.ndarray,
) -> float:
    """Measure of ``union(base)`` not covered by ``union(holes)``."""
    total = union_measure(base_starts, base_ends)
    return total - intersection_measure(
        base_starts, base_ends, hole_starts, hole_ends
    )
