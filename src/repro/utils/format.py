"""Human-readable formatting helpers for reports, timelines and benches."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.config import GiB, KiB, MiB


def format_bytes(nbytes: float) -> str:
    """Format a byte count with a binary-prefix unit, e.g. ``1.50 GiB``."""
    sign = "-" if nbytes < 0 else ""
    nbytes = abs(nbytes)
    if nbytes >= GiB:
        return f"{sign}{nbytes / GiB:.2f} GiB"
    if nbytes >= MiB:
        return f"{sign}{nbytes / MiB:.2f} MiB"
    if nbytes >= KiB:
        return f"{sign}{nbytes / KiB:.2f} KiB"
    return f"{sign}{nbytes:.0f} B"


def format_seconds(seconds: float) -> str:
    """Format a duration with an SI unit, e.g. ``38.2 ms``."""
    sign = "-" if seconds < 0 else ""
    seconds = abs(seconds)
    if seconds >= 1.0:
        return f"{sign}{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{sign}{seconds * 1e3:.2f} ms"
    if seconds >= 1e-6:
        return f"{sign}{seconds * 1e6:.2f} us"
    return f"{sign}{seconds * 1e9:.1f} ns"


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a left-aligned ASCII table; used by bench harness printouts."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
