"""A mini-batch (sampled) GCN trainer — the DistDGL-style comparator.

The paper contrasts its full-batch approach against sampling-based
systems (DistDGL, AliGraph, FastGCN, Cluster-GCN). This trainer is the
minimal faithful representative: GraphSAGE-style fanout sampling +
per-batch forward/backward on the sampled blocks + Adam, on one
simulated GPU. It exposes the same ``train_epoch() -> EpochStats`` /
``evaluate(split)`` protocol as the other trainers, so the training
loop, benches and tests compose.

Two caveats the paper raises appear naturally here:

* per-epoch *work* grows with the sampled neighbourhood (each batch
  touches fanout^L more vertices than its seeds);
* the gradient is a biased estimate (sampled mean aggregation), so the
  loss trajectory differs from full-batch training — which is exactly
  the accuracy-gap argument ([20]) the paper cites.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.device.engine import SimContext
from repro.device.tensor import Mode
from repro.errors import ConfigurationError
from repro.datasets.loader import Dataset
from repro.hardware.machines import dgx1, single_gpu
from repro.hardware.spec import MachineSpec
from repro.kernels.cost import CostModel, KernelCosts
from repro.nn.adam import AdamOptimizer
from repro.nn.init import init_weights
from repro.nn.model import GCNModelSpec
from repro.core.stats import EpochStats, OpBreakdown
from repro.sampling.neighbor import NeighborSampler, SampledBlock
from repro.sparse.csr import CSRMatrix
from repro.sparse.normalize import gcn_normalize
from repro.utils.rng import as_generator


class MiniBatchGCNTrainer:
    """Sampled GCN training on one simulated GPU."""

    def __init__(
        self,
        dataset: Dataset,
        model: GCNModelSpec,
        fanouts: Optional[Sequence[int]] = None,
        batch_size: int = 512,
        machine: Optional[MachineSpec] = None,
        lr: float = 1e-2,
        seed: int = 0,
        kernel_costs: Optional[KernelCosts] = None,
    ):
        if dataset.is_symbolic:
            raise ConfigurationError("mini-batch training needs a functional dataset")
        if model.layer_dims[0] != dataset.d0:
            raise ConfigurationError(
                f"model input width {model.layer_dims[0]} != dataset d0 {dataset.d0}"
            )
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if fanouts is None:
            fanouts = [10] * model.num_layers
        if len(fanouts) != model.num_layers:
            raise ConfigurationError(
                f"{len(fanouts)} fanouts for {model.num_layers} layers"
            )
        machine = machine or dgx1()
        self.dataset = dataset
        self.model = model
        self.batch_size = batch_size
        self.ctx = SimContext(single_gpu(machine.gpu, name="minibatch-gpu"),
                              num_gpus=1, mode=Mode.FUNCTIONAL)
        self.cost = CostModel(machine.gpu, kernel_costs or KernelCosts())
        # aggregation pattern: row v lists in-neighbours (A_hat^T layout)
        self.full_adjacency = gcn_normalize(dataset.adjacency).transpose()
        self.sampler = NeighborSampler(self.full_adjacency, fanouts)
        self.weights = init_weights(model.layer_dims, seed=seed)
        self.optimizer = AdamOptimizer(self.weights, lr=lr)
        self.rng = as_generator(seed)
        self.epochs_trained = 0
        # memory accounting: features + graph staged on the device
        dev = self.ctx.device(0)
        dev.pool.allocate(dataset.features.nbytes, tag="features")
        dev.pool.allocate(self.full_adjacency.nbytes, tag="adjacency")

    @property
    def mode(self) -> Mode:
        return Mode.FUNCTIONAL

    def get_weights(self) -> List[np.ndarray]:
        return [w.copy() for w in self.weights]

    # -- one batch ----------------------------------------------------------------

    def _run_batch(self, seeds: np.ndarray) -> float:
        """Forward + backward + step on one sampled batch; returns loss sum."""
        engine = self.ctx.engine
        stream = self.ctx.device(0).compute_stream
        blocks = self.sampler.sample(seeds, rng=self.rng)
        h = self.dataset.features[blocks[0].src_nodes].astype(FLOAT_DTYPE)
        inputs: List[np.ndarray] = []
        outputs: List[np.ndarray] = []
        for l, block in enumerate(blocks):
            inputs.append(h)
            hw = h @ self.weights[l]
            engine.submit(
                stream, f"mb/fwd{l}/gemm", "gemm",
                self.cost.gemm_time(h.shape[0], hw.shape[1], h.shape[1]),
            )
            z = block.adjacency.spmm(hw)
            engine.submit(
                stream, f"mb/fwd{l}/spmm", "spmm",
                self.cost.spmm_time(
                    block.num_dst, block.adjacency.nnz, hw.shape[1],
                    block.num_src,
                ),
            )
            if l < len(blocks) - 1:
                np.maximum(z, 0.0, out=z)
                engine.submit(
                    stream, f"mb/fwd{l}/relu", "activation",
                    self.cost.elementwise_time(z.size, 1, 1),
                )
            h = z.astype(FLOAT_DTYPE, copy=False)
            outputs.append(h)

        # loss on the seeds (all destinations of the last block)
        labels = self.dataset.labels[blocks[-1].dst_nodes]
        logits = outputs[-1]
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        denom = exp.sum(axis=1, keepdims=True)
        log_probs = shifted - np.log(denom)
        picked = log_probs[np.arange(labels.size), labels]
        loss_sum = float(-picked.sum())
        grad = exp / denom
        grad[np.arange(labels.size), labels] -= 1.0
        grad = (grad / labels.size).astype(FLOAT_DTYPE)
        engine.submit(
            stream, "mb/loss", "loss",
            self.cost.softmax_xent_time(labels.size, logits.shape[1]),
        )

        # backward through the blocks
        grads: List[Optional[np.ndarray]] = [None] * len(blocks)
        g = grad
        for l in range(len(blocks) - 1, -1, -1):
            block = blocks[l]
            if l < len(blocks) - 1:
                g = g * (outputs[l] > 0)
                engine.submit(
                    stream, f"mb/bwd{l}/relu", "activation",
                    self.cost.elementwise_time(g.size, 2, 1),
                )
            hwg = block.adjacency.transpose().spmm(g)
            engine.submit(
                stream, f"mb/bwd{l}/spmm", "spmm",
                self.cost.spmm_time(
                    block.num_src, block.adjacency.nnz, g.shape[1],
                    block.num_dst,
                ),
            )
            grads[l] = (inputs[l].T @ hwg).astype(FLOAT_DTYPE)
            engine.submit(
                stream, f"mb/bwd{l}/wgrad", "gemm",
                self.cost.gemm_time(
                    inputs[l].shape[1], hwg.shape[1], inputs[l].shape[0]
                ),
            )
            if l > 0:
                # block l's sources are exactly block l-1's destinations,
                # so hwg @ W^T is already the gradient at layer l-1's
                # output — no index remapping needed.
                g = (hwg @ self.weights[l].T).astype(FLOAT_DTYPE)
                engine.submit(
                    stream, f"mb/bwd{l}/hgrad", "gemm",
                    self.cost.gemm_time(hwg.shape[0], self.weights[l].shape[0],
                                        hwg.shape[1]),
                )
        self.optimizer.step(grads)  # type: ignore[arg-type]
        engine.submit(
            stream, "mb/adam", "adam",
            self.cost.adam_time(self.model.num_parameters),
        )
        return loss_sum

    # -- epochs ------------------------------------------------------------------------

    def train_epoch(self) -> EpochStats:
        """One pass over the training vertices in shuffled mini-batches."""
        t0 = self.ctx.synchronize()
        trace_start = len(self.ctx.engine.trace)
        train_ids = np.nonzero(self.dataset.train_mask)[0]
        order = self.rng.permutation(train_ids.size)
        shuffled = train_ids[order]
        total_loss = 0.0
        for start in range(0, shuffled.size, self.batch_size):
            seeds = shuffled[start : start + self.batch_size]
            total_loss += self._run_batch(seeds)
        t1 = self.ctx.synchronize()
        trace = self.ctx.engine.trace[trace_start:]
        self.epochs_trained += 1
        return EpochStats(
            epoch_time=t1 - t0,
            loss=total_loss / max(train_ids.size, 1),
            breakdown=OpBreakdown.from_trace(trace),
            peak_memory=self.ctx.peak_memory(),
            trace=list(trace),
        )

    def fit(self, epochs: int) -> List[EpochStats]:
        if epochs < 0:
            raise ConfigurationError(f"epochs must be >= 0, got {epochs}")
        return [self.train_epoch() for _ in range(epochs)]

    # -- evaluation: full-graph inference (no sampling) -----------------------------------

    def evaluate(self, split: str = "test") -> float:
        masks = {
            "train": self.dataset.train_mask,
            "val": self.dataset.val_mask,
            "test": self.dataset.test_mask,
        }
        if split not in masks:
            raise ConfigurationError(f"unknown split {split!r}")
        mask = masks[split]
        h = self.dataset.features
        for l, w in enumerate(self.weights):
            z = self.full_adjacency.spmm(h @ w)
            if l < len(self.weights) - 1:
                np.maximum(z, 0.0, out=z)
            h = z.astype(FLOAT_DTYPE, copy=False)
        pred = np.argmax(h, axis=1)
        return float((pred[mask] == self.dataset.labels[mask]).mean())
