"""Neighbourhood sampling (GraphSAGE-style) and the explosion metric.

The paper's introduction argues *against* mini-batch training: "starting
from the mini-batch nodes, it is possible to reach almost every single
node in the graph in just a few hops … which increases the work
performed during a single epoch exponentially". This module provides
the sampling substrate so the claim becomes measurable:

* :class:`NeighborSampler` draws per-layer fanout-limited neighbourhood
  blocks, exactly the DistDGL/GraphSAGE construction;
* :func:`neighborhood_expansion` measures the *unrestricted* k-hop
  reach of a batch — the explosion itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.config import OFFSET_DTYPE
from repro.errors import ConfigurationError
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import SeedLike, as_generator


@dataclass
class SampledBlock:
    """One layer's bipartite sampling block.

    ``src_nodes`` (global ids) feed the layer; ``dst_nodes`` (a prefix
    of ``src_nodes`` by convention) receive its output. ``adjacency``
    is the (dst x src) sampled matrix with GCN mean normalisation over
    the *sampled* edges.
    """

    src_nodes: np.ndarray
    dst_nodes: np.ndarray
    adjacency: CSRMatrix

    @property
    def num_src(self) -> int:
        return int(self.src_nodes.size)

    @property
    def num_dst(self) -> int:
        return int(self.dst_nodes.size)


class NeighborSampler:
    """Fanout-limited layered neighbourhood sampling.

    ``adjacency`` is the (destination-row) graph: row ``v`` lists the
    in-neighbours whose features ``v`` aggregates (i.e. pass
    :math:`\\hat A^T`'s *pattern*, or any square CSR adjacency).
    """

    def __init__(self, adjacency: CSRMatrix, fanouts: Sequence[int]):
        if adjacency.shape[0] != adjacency.shape[1]:
            raise ConfigurationError("sampler needs a square adjacency")
        if not fanouts or any(f < 1 for f in fanouts):
            raise ConfigurationError(
                f"fanouts must be positive per layer, got {fanouts!r}"
            )
        self.adjacency = adjacency
        self.fanouts = [int(f) for f in fanouts]

    @property
    def num_layers(self) -> int:
        return len(self.fanouts)

    def sample(
        self, seeds: np.ndarray, rng: SeedLike = None
    ) -> List[SampledBlock]:
        """Blocks for one mini-batch, ordered input-layer-first.

        Layer ``L-1``'s block has ``seeds`` as destinations; each
        earlier block's destinations are the previous block's sources.
        """
        rng = as_generator(rng)
        seeds = np.unique(np.asarray(seeds, dtype=OFFSET_DTYPE))
        if seeds.size == 0:
            raise ConfigurationError("empty seed set")
        blocks: List[SampledBlock] = []
        dst = seeds
        for fanout in reversed(self.fanouts):
            block = self._sample_one(dst, fanout, rng)
            blocks.append(block)
            dst = block.src_nodes
        blocks.reverse()
        return blocks

    def _sample_one(
        self, dst: np.ndarray, fanout: int, rng: np.random.Generator
    ) -> SampledBlock:
        indptr, indices = self.adjacency.indptr, self.adjacency.indices
        rows_list: List[np.ndarray] = []
        cols_list: List[np.ndarray] = []
        for local, v in enumerate(dst):
            lo, hi = int(indptr[v]), int(indptr[v + 1])
            degree = hi - lo
            if degree == 0:
                continue
            if degree <= fanout:
                chosen = indices[lo:hi]
            else:
                chosen = indices[lo + rng.choice(degree, size=fanout,
                                                 replace=False)]
            rows_list.append(np.full(chosen.size, local, dtype=OFFSET_DTYPE))
            cols_list.append(chosen.astype(OFFSET_DTYPE))
        if rows_list:
            rows = np.concatenate(rows_list)
            neigh = np.concatenate(cols_list)
        else:
            rows = np.empty(0, dtype=OFFSET_DTYPE)
            neigh = np.empty(0, dtype=OFFSET_DTYPE)
        # source set = dst nodes first (self features flow through), then
        # the newly reached neighbours.
        src_nodes, local_cols = np.unique(
            np.concatenate([dst, neigh]), return_inverse=False
        ), None
        # map global neighbour ids to local source indices
        src_nodes = np.concatenate(
            [dst, np.setdiff1d(neigh, dst, assume_unique=False)]
        )
        lookup = {int(g): i for i, g in enumerate(src_nodes)}
        local_cols = np.fromiter(
            (lookup[int(g)] for g in neigh), dtype=OFFSET_DTYPE,
            count=neigh.size,
        )
        from repro.sparse.coo import COOMatrix

        coo = COOMatrix(
            (dst.size, src_nodes.size), rows, local_cols, sum_duplicates=True
        )
        block_adj = CSRMatrix.from_coo(coo)
        # mean aggregation over the sampled edges
        row_nnz = block_adj.row_nnz().astype(np.float32)
        inv = np.ones(dst.size, dtype=np.float32)
        nz = row_nnz > 0
        inv[nz] = 1.0 / row_nnz[nz]
        block_adj = block_adj.scale_rows(inv)
        return SampledBlock(
            src_nodes=src_nodes.astype(OFFSET_DTYPE),
            dst_nodes=dst.astype(OFFSET_DTYPE),
            adjacency=block_adj,
        )


def neighborhood_expansion(
    adjacency: CSRMatrix,
    seeds: np.ndarray,
    hops: int,
) -> List[int]:
    """Size of the unrestricted k-hop neighbourhood of ``seeds``.

    Returns ``[ |N_0|, |N_1|, ..., |N_hops| ]`` with ``N_0 = seeds`` —
    the quantity behind the paper's neighbourhood-explosion argument.
    """
    if hops < 0:
        raise ConfigurationError(f"hops must be >= 0, got {hops}")
    n = adjacency.shape[0]
    frontier = np.zeros(n, dtype=bool)
    frontier[np.asarray(seeds, dtype=np.intp)] = True
    sizes = [int(frontier.sum())]
    reached = frontier.copy()
    indptr, indices = adjacency.indptr, adjacency.indices
    for _ in range(hops):
        current = np.nonzero(frontier)[0]
        if current.size == 0:
            sizes.append(int(reached.sum()))
            continue
        starts = indptr[current]
        ends = indptr[current + 1]
        chunks = [indices[s:e] for s, e in zip(starts, ends) if e > s]
        if chunks:
            neighbours = np.unique(np.concatenate(chunks))
            fresh = neighbours[~reached[neighbours]]
            reached[fresh] = True
            frontier = np.zeros(n, dtype=bool)
            frontier[fresh] = True
        else:
            frontier = np.zeros(n, dtype=bool)
        sizes.append(int(reached.sum()))
    return sizes
