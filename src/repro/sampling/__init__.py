"""Mini-batch sampling substrate (the approach the paper argues against)."""

from repro.sampling.neighbor import (
    NeighborSampler,
    SampledBlock,
    neighborhood_expansion,
)
from repro.sampling.minibatch import MiniBatchGCNTrainer

__all__ = [
    "NeighborSampler",
    "SampledBlock",
    "neighborhood_expansion",
    "MiniBatchGCNTrainer",
]
