"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``train``        train a GCN on a (scaled) Table-1 dataset and report
                 loss/accuracy/epoch stats;
``experiment``   run one paper table/figure driver by name;
``datasets``     list the Table-1 dataset registry;
``machines``     list the modelled machines;
``plan``         memory planning for a dataset/hidden-width/machine;
``parallel``     multi-node parallelism planning (``parallel plan``
                 prints the per-layer scheme mixture with predicted
                 comm/compute costs);
``serve-bench``  online-inference serving benchmark (latency/throughput);
``dynamic``      mixed query/mutation/retrain serving on a mutating
                 graph (``dynamic run``);
``telemetry``    instrumented runs, metric summaries, and the
                 perf-regression gate (``telemetry diff``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import GiB
from repro.datasets.specs import table1_rows
from repro.errors import DeviceOutOfMemoryError, ReproError
from repro.utils.format import ascii_table, format_bytes, format_seconds

#: experiment name -> figures-module driver attribute.
EXPERIMENTS = {
    "table1": "table1",
    "fig5": "fig5_breakdown",
    "fig6": "fig6_permutation_timeline",
    "fig7": "fig7_perm_overlap_speedup",
    "fig8": "fig8_overlap_timeline",
    "fig9": "fig9_degree_scaling",
    "fig10": "fig10_dgxv100_runtime",
    "fig11": "fig11_dgxv100_speedup",
    "fig12": "fig12_memory_footprint",
    "fig13": "fig13_dgxa100_runtime",
    "fig14": "fig14_dgxa100_speedup",
    "table2": "table2_distgnn",
    "table3": "table3_mggcn_a100",
    "sec51": "sec51_partitioning_analysis",
    "sec66": "sec66_vs_distgnn",
    "accuracy": "accuracy_parity",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MG-GCN reproduction: simulated multi-GPU GCN training",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a GCN on a scaled dataset")
    train.add_argument("dataset", help="Table-1 dataset name")
    train.add_argument("--scale", type=float, default=0.01)
    train.add_argument("--machine", default="dgx-a100",
                       choices=["dgx1", "dgx-v100", "dgx-a100"])
    train.add_argument("--gpus", type=int, default=8)
    train.add_argument("--hidden", type=int, default=128)
    train.add_argument("--layers", type=int, default=2)
    train.add_argument("--epochs", type=int, default=20)
    train.add_argument("--lr", type=float, default=1e-2)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--no-permute", action="store_true")
    train.add_argument("--no-overlap", action="store_true")
    train.add_argument("--backend", default="numpy",
                       help="kernel backend (see `repro backends`)")
    train.add_argument("--fuse", action="store_true",
                       help="fuse SpMM->GeMM / GeMM->ReLU chains")
    train.add_argument("--batched", action="store_true",
                       help="batch per-rank kernel loops into one submit")
    train.add_argument("--capture", action="store_true",
                       help="capture epoch 1 into a plan and replay the rest")

    exp = sub.add_parser("experiment", help="run one paper table/figure driver")
    exp.add_argument("name", choices=sorted(EXPERIMENTS))

    sub.add_parser("datasets", help="list the Table-1 dataset registry")
    sub.add_parser("machines", help="list the modelled machines")
    sub.add_parser("backends", help="list the kernel-backend registry")

    plan = sub.add_parser("plan", help="memory planning for a configuration")
    plan.add_argument("dataset")
    plan.add_argument("--hidden", type=int, default=512)
    plan.add_argument("--machine", default="dgx1",
                      choices=["dgx1", "dgx-v100", "dgx-a100"])

    par = sub.add_parser(
        "parallel", help="multi-node parallelism planning"
    )
    par_sub = par.add_subparsers(dest="parallel_command", required=True)
    pplan = par_sub.add_parser(
        "plan",
        help="per-layer parallelism choices for a dataset x cluster",
    )
    pplan.add_argument("dataset", help="Table-1 dataset name")
    pplan.add_argument("--scale", type=float, default=1.0)
    pplan.add_argument("--machine", default="dgx1",
                       choices=["dgx1", "dgx-v100", "dgx-a100"],
                       help="per-node machine template")
    pplan.add_argument("--nodes", type=int, default=1,
                       help="number of nodes (NIC-connected)")
    pplan.add_argument("--gpus", type=int, default=None,
                       help="total GPUs (default: every GPU of the cluster)")
    pplan.add_argument("--hidden", type=int, default=128)
    pplan.add_argument("--layers", type=int, default=2)
    pplan.add_argument("--partition", default="uniform",
                       choices=["uniform", "resource_aware"],
                       help="row-partition strategy "
                            "(mirrors TrainerConfig.partition_strategy)")
    pplan.add_argument("--cache-staleness", type=int, default=None,
                       metavar="K",
                       help="price the training-time embedding cache at "
                            "staleness K into the plan (default: off)")
    pplan.add_argument("--cache-budget", type=int, default=None,
                       metavar="BYTES",
                       help="per-rank cache byte budget (default: unbounded)")
    pplan.add_argument("--json", action="store_true",
                       help="emit the plan as JSON instead of the table")

    report = sub.add_parser(
        "report", help="re-measure all experiments into a markdown report"
    )
    report.add_argument("output", help="output .md path")
    report.add_argument("--include-slow", action="store_true",
                        help="also run the slow functional sweeps")

    serve = sub.add_parser(
        "serve-bench", help="online-inference serving benchmark"
    )
    serve.add_argument("dataset", help="Table-1 dataset name")
    serve.add_argument("--scale", type=float, default=0.01)
    serve.add_argument("--machine", default="dgx-a100",
                       choices=["dgx1", "dgx-v100", "dgx-a100"])
    serve.add_argument("--gpus", type=int, default=4)
    serve.add_argument("--hidden", type=int, default=64)
    serve.add_argument("--layers", type=int, default=2)
    serve.add_argument("--requests", type=int, default=200)
    serve.add_argument("--rate", type=float, default=2000.0,
                       help="mean arrival rate, requests/simulated second")
    serve.add_argument("--skew", type=float, default=1.0,
                       help="Zipf skew of query targets (0 = uniform)")
    serve.add_argument("--max-batch", type=int, default=8)
    serve.add_argument("--max-wait", type=float, default=1e-3)
    serve.add_argument("--cache-entries", type=int, default=None,
                       help="embedding-cache capacity (default: 2n, 0 = off)")
    serve.add_argument("--pinned", type=int, default=None,
                       help="pinned hot vertices (default: n/100)")
    serve.add_argument("--cold", action="store_true",
                       help="skip the warm-up forward (cold cache)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--backend", default="numpy",
                       help="kernel backend (see `repro backends`)")
    serve.add_argument("--trace", default=None,
                       help="write a Chrome trace JSON of the run here")

    dyn = sub.add_parser(
        "dynamic",
        help="dynamic graphs: mixed query/mutation/retrain serving",
    )
    dyn_sub = dyn.add_subparsers(dest="dynamic_command", required=True)
    drun = dyn_sub.add_parser(
        "run", help="serve a query stream while the graph mutates"
    )
    drun.add_argument("dataset", help="Table-1 dataset name")
    drun.add_argument("--scale", type=float, default=0.01)
    drun.add_argument("--machine", default="dgx-a100",
                      choices=["dgx1", "dgx-v100", "dgx-a100"])
    drun.add_argument("--gpus", type=int, default=4)
    drun.add_argument("--hidden", type=int, default=64)
    drun.add_argument("--layers", type=int, default=2)
    drun.add_argument("--requests", type=int, default=200)
    drun.add_argument("--rate", type=float, default=2000.0,
                      help="query arrival rate (req/s)")
    drun.add_argument("--skew", type=float, default=1.0,
                      help="query Zipf skew over degree rank")
    drun.add_argument("--mutation-batches", type=int, default=5)
    drun.add_argument("--mutation-rate", type=float, default=50.0,
                      help="mutation-batch arrival rate (batches/s)")
    drun.add_argument("--edges-per-batch", type=int, default=8)
    drun.add_argument("--mutation-skew", type=float, default=0.8,
                      help="Zipf skew of mutated-edge endpoints")
    drun.add_argument("--bursty", action="store_true",
                      help="bursty mutation arrivals instead of Poisson")
    drun.add_argument("--retrain-epochs", type=int, default=0,
                      help="warm-start retrain epochs per generation")
    drun.add_argument("--rebalance-threshold", type=float, default=None,
                      help="max/mean cost ratio that triggers a repartition "
                           "(omit to disable rebalancing)")
    drun.add_argument("--max-batch", type=int, default=8)
    drun.add_argument("--max-wait", type=float, default=1e-3)
    drun.add_argument("--seed", type=int, default=0)
    drun.add_argument("--snapshot", default=None,
                      help="write a regression-gate snapshot JSON here")

    tele = sub.add_parser(
        "telemetry",
        help="instrumented runs, metric summaries, regression gating",
    )
    tele_sub = tele.add_subparsers(dest="telemetry_command", required=True)

    trun = tele_sub.add_parser(
        "run", help="run an instrumented train(+serve) and export metrics"
    )
    trun.add_argument("dataset", help="Table-1 dataset name")
    trun.add_argument("--scale", type=float, default=0.01)
    trun.add_argument("--machine", default="dgx-a100",
                      choices=["dgx1", "dgx-v100", "dgx-a100"])
    trun.add_argument("--gpus", type=int, default=4)
    trun.add_argument("--hidden", type=int, default=64)
    trun.add_argument("--layers", type=int, default=2)
    trun.add_argument("--epochs", type=int, default=5)
    trun.add_argument("--seed", type=int, default=0)
    trun.add_argument("--backend", default="numpy",
                      help="kernel backend (see `repro backends`)")
    trun.add_argument("--serve-requests", type=int, default=0,
                      help="also serve N online requests on the same hub")
    trun.add_argument("--trace-ops", action="store_true",
                      help="record per-op spans (heavier traces)")
    trun.add_argument("--snapshot", default=None,
                      help="write a regression-gate snapshot JSON here")
    trun.add_argument("--prometheus", default=None,
                      help="write a Prometheus text exposition here")
    trun.add_argument("--trace", default=None,
                      help="write a merged Chrome trace JSON here")
    trun.add_argument("--jsonl", default=None,
                      help="write a JSONL metrics+spans export here")

    twhy = tele_sub.add_parser(
        "why",
        help="critical-path attribution: why was a run (or epoch) slow",
    )
    twhy.add_argument(
        "target",
        help="Table-1 dataset name to train-and-attribute, or the path "
             "of a flight-recorder postmortem bundle to analyze",
    )
    twhy.add_argument("--scale", type=float, default=0.01)
    twhy.add_argument("--machine", default="dgx-a100",
                      choices=["dgx1", "dgx-v100", "dgx-a100"])
    twhy.add_argument("--gpus", type=int, default=4)
    twhy.add_argument("--hidden", type=int, default=64)
    twhy.add_argument("--layers", type=int, default=2)
    twhy.add_argument("--epochs", type=int, default=5)
    twhy.add_argument("--seed", type=int, default=0)
    twhy.add_argument("--epoch", type=int, default=None,
                      help="attribute this epoch (default: the slowest)")
    twhy.add_argument("--top", type=int, default=10,
                      help="ranked path ops to print")
    twhy.add_argument("--json", default=None,
                      help="write the report(s) as JSON here")
    twhy.add_argument("--trace", default=None,
                      help="write a Chrome trace (timeline + critical "
                           "path overlay) here")

    tsum = tele_sub.add_parser(
        "summary", help="print the flattened metrics of a snapshot"
    )
    tsum.add_argument("snapshot", help="snapshot / BENCH json path")

    tdiff = tele_sub.add_parser(
        "diff", help="regression gate: compare a current snapshot "
                     "against a baseline (exit 1 on regression)"
    )
    tdiff.add_argument("baseline", help="baseline snapshot / BENCH json")
    tdiff.add_argument("current", help="current snapshot / BENCH json")
    tdiff.add_argument("--rtol", type=float, default=None,
                       help="default relative tolerance (default 0.05)")
    tdiff.add_argument("--tolerance", action="append", default=[],
                       metavar="PATTERN=RTOL",
                       help="per-metric tolerance (fnmatch pattern; "
                            "first match wins; repeatable)")
    tdiff.add_argument("--ignore", action="append", default=[],
                       metavar="PATTERN",
                       help="metric pattern to skip entirely (repeatable)")
    return parser


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core import MGGCNTrainer, TrainerConfig
    from repro.datasets import load_dataset
    from repro.hardware import get_machine
    from repro.nn import GCNModelSpec

    dataset = load_dataset(args.dataset, scale=args.scale, learnable=True,
                           seed=args.seed)
    model = GCNModelSpec.build(dataset.d0, args.hidden, dataset.num_classes,
                               args.layers)
    config = TrainerConfig(
        permute=not args.no_permute,
        overlap=not args.no_overlap,
        lr=args.lr,
        seed=args.seed,
        kernel_backend=args.backend,
        fuse_ops=args.fuse,
        batched_submit=args.batched,
        capture_epochs=args.capture,
    )
    trainer = MGGCNTrainer(
        dataset, model, machine=get_machine(args.machine),
        num_gpus=args.gpus, config=config,
    )
    print(f"training {dataset.name} (n={dataset.n:,}, m={dataset.m:,}) "
          f"on {args.gpus}x {args.machine}")
    stats = None
    for epoch in range(1, args.epochs + 1):
        stats = trainer.train_epoch()
        if epoch == 1 or epoch % max(args.epochs // 5, 1) == 0:
            print(f"  epoch {epoch:>4}: loss {stats.loss:.4f}  "
                  f"sim {format_seconds(stats.epoch_time)}")
    print(f"test accuracy: {trainer.evaluate('test'):.4f}")
    print(f"peak GPU memory: {format_bytes(stats.peak_memory)}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    driver = getattr(figures, EXPERIMENTS[args.name])
    driver(verbose=True)
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    print(
        ascii_table(
            ["dataset", "n", "m", "d(0)", "d(L)", "k"],
            table1_rows(),
        )
    )
    return 0


def _cmd_machines(_args: argparse.Namespace) -> int:
    from repro.hardware import dgx1, dgx_a100

    rows = []
    for machine in (dgx1(), dgx_a100()):
        rows.append(
            [
                machine.name,
                machine.num_gpus,
                machine.gpu.name,
                format_bytes(machine.gpu.memory_bytes),
                f"{machine.gpu.memory_bandwidth / 1e9:.0f} GB/s",
                "NVSwitch" if machine.has_switch else "cube-mesh",
            ]
        )
    print(ascii_table(
        ["machine", "GPUs", "GPU", "memory", "HBM bw", "fabric"], rows,
    ))
    return 0


def _cmd_backends(_args: argparse.Namespace) -> int:
    from repro.backends import get_backend, registered_backends

    rows = []
    for name, available in registered_backends():
        if available:
            bit = "yes" if get_backend(name).bit_identical else "rtol"
        else:
            bit = "-"
        rows.append([name, "yes" if available else "no", bit])
    print(ascii_table(["backend", "available", "bit-identical"], rows))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.datasets import load_dataset
    from repro.hardware import get_machine
    from repro.profiling import max_layers_that_fit

    dataset = load_dataset(args.dataset, symbolic=True)
    machine = get_machine(args.machine)
    rows = []
    for gpus in (1, 2, 4, 8):
        layers = max_layers_that_fit(
            dataset, args.hidden, num_gpus=gpus,
            memory_budget=machine.gpu.memory_bytes,
        )
        rows.append([gpus, layers if layers else "does not fit"])
    print(f"{dataset.name} @ hidden {args.hidden} on {machine.name} "
          f"({format_bytes(machine.gpu.memory_bytes)}/GPU):")
    print(ascii_table(["GPUs", "max layers"], rows))
    return 0


def _parallel_plan(args: argparse.Namespace) -> int:
    import json

    from repro.cache import CachePolicy
    from repro.core.partitioner import preview_partition
    from repro.datasets import load_dataset
    from repro.hardware import get_machine
    from repro.hardware.machines import multi_node_cluster
    from repro.nn import GCNModelSpec
    from repro.parallel import ParallelismPlanner

    dataset = load_dataset(args.dataset, scale=args.scale, symbolic=True)
    node = get_machine(args.machine)
    machine = (
        multi_node_cluster(args.nodes, node=node) if args.nodes > 1 else node
    )
    model = GCNModelSpec.build(
        dataset.d0, args.hidden, dataset.num_classes, args.layers
    )
    policy = None
    if args.cache_staleness is not None:
        policy = CachePolicy(
            staleness_epochs=args.cache_staleness,
            budget_bytes=args.cache_budget,
        )
    planner = ParallelismPlanner(
        dataset, model, machine, num_gpus=args.gpus, cache_policy=policy
    )
    plan = planner.plan()

    # partition quality: resource-aware splits need concrete row costs,
    # so re-load functionally when the graph is small enough to afford it.
    stats_dataset = dataset
    if (
        args.partition == "resource_aware"
        and dataset.n <= 250_000
        and dataset.m <= 20_000_000
    ):
        stats_dataset = load_dataset(args.dataset, scale=args.scale)
    quality = preview_partition(
        stats_dataset, machine, planner.P, strategy=args.partition
    )
    # expected epoch wire bytes with/without the training cache (the
    # preview defaults to staleness 1, unbounded budget, when no
    # --cache-staleness was given).
    preview_policy = policy or CachePolicy(staleness_epochs=1)
    bytes_full = planner.broadcast_bytes_per_epoch()
    bytes_cached = planner.broadcast_bytes_per_epoch(preview_policy)

    if args.json:
        out = plan.to_dict()
        out["partition_quality"] = quality
        out["broadcast_bytes_per_epoch"] = {
            "uncached": bytes_full,
            "cached": bytes_cached,
            "cache_staleness": preview_policy.staleness_epochs,
        }
        print(json.dumps(out, indent=2, sort_keys=True))
    else:
        print(plan.explain())
        print(
            f"partition ({quality['strategy']}): "
            f"nnz imbalance {quality['nnz_imbalance']:.3f}, "
            f"row imbalance {quality['row_imbalance']:.3f}, "
            f"byte imbalance {quality['byte_imbalance']:.3f}"
        )
        if quality["strategy"] != args.partition:
            print(
                f"  (note: {args.partition} falls back to "
                f"{quality['strategy']} on symbolic datasets; rerun with a "
                f"smaller --scale for concrete row costs)"
            )
        saved = bytes_full - bytes_cached
        pct = 100.0 * saved / bytes_full if bytes_full else 0.0
        print(
            f"broadcast bytes/epoch: {format_bytes(bytes_full)} uncached, "
            f"{format_bytes(bytes_cached)} with cache @ staleness "
            f"{preview_policy.staleness_epochs} (-{pct:.0f}%)"
        )
    return 0


def _cmd_parallel(args: argparse.Namespace) -> int:
    return {
        "plan": _parallel_plan,
    }[args.parallel_command](args)


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.datasets import load_dataset
    from repro.hardware import get_machine
    from repro.nn import GCNModelSpec
    from repro.nn.init import init_weights
    from repro.profiling import export_chrome_trace
    from repro.serve import ServingConfig, ServingEngine, poisson_workload

    dataset = load_dataset(args.dataset, scale=args.scale, learnable=True,
                           seed=args.seed)
    spec = GCNModelSpec.build(dataset.d0, args.hidden, dataset.num_classes,
                              args.layers)
    cache_entries = (
        2 * dataset.n if args.cache_entries is None else args.cache_entries
    )
    pinned = max(dataset.n // 100, 1) if args.pinned is None else args.pinned
    config = ServingConfig(
        machine=get_machine(args.machine),
        num_gpus=args.gpus,
        cache_entries=cache_entries,
        num_pinned=pinned if cache_entries else 0,
        max_batch_size=args.max_batch,
        max_wait=args.max_wait,
        kernel_backend=args.backend,
    )
    engine = ServingEngine(
        dataset, init_weights(spec.layer_dims, seed=args.seed), spec,
        config=config,
    )
    mode = "cold"
    if cache_entries and not args.cold:
        engine.warm_cache()
        mode = "warm"
    requests = poisson_workload(
        dataset, args.requests, rate=args.rate, skew=args.skew,
        seed=args.seed,
    )
    result = engine.serve(requests)
    s = result.summary
    print(f"served {args.requests} requests on {dataset.name} "
          f"(n={dataset.n:,}) @ {args.gpus}x {args.machine}, {mode} cache")
    rows = [
        ["throughput", f"{s['throughput_rps']:,.0f} req/s"],
        ["p50 latency", format_seconds(s["latency_p50"])],
        ["p95 latency", format_seconds(s["latency_p95"])],
        ["p99 latency", format_seconds(s["latency_p99"])],
        ["mean batch size", f"{s['mean_batch_size']:.2f}"],
        ["max queue depth", f"{s['max_queue_depth']:.0f}"],
        ["cache hit rate", f"{s.get('cache_hit_rate', 0.0):.1%}"],
    ]
    print(ascii_table(["metric", "value"], rows))
    if args.trace:
        export_chrome_trace(engine.ctx.engine.trace, args.trace)
        print(f"wrote trace to {args.trace}")
    return 0


def _cmd_dynamic(args: argparse.Namespace) -> int:
    from repro.core import TrainerConfig
    from repro.datasets import load_dataset
    from repro.dynamic import (
        DynamicGraph,
        DynamicServingEngine,
        IncrementalTrainer,
        Rebalancer,
        bursty_mutations,
        poisson_mutations,
    )
    from repro.hardware import get_machine
    from repro.nn import GCNModelSpec
    from repro.nn.init import init_weights
    from repro.serve import ServingConfig, poisson_workload
    from repro.telemetry import Telemetry, write_snapshot

    telemetry = Telemetry(run_id=f"{args.dataset}-dynamic")
    dataset = load_dataset(args.dataset, scale=args.scale, learnable=True,
                           seed=args.seed)
    spec = GCNModelSpec.build(dataset.d0, args.hidden, dataset.num_classes,
                              args.layers)
    graph = DynamicGraph(dataset)
    machine = get_machine(args.machine)
    rebalancer = None
    if args.rebalance_threshold is not None:
        rebalancer = Rebalancer(args.gpus,
                                threshold=args.rebalance_threshold,
                                feature_dim=dataset.d0, machine=machine)
    incremental = None
    if args.retrain_epochs > 0:
        incremental = IncrementalTrainer(
            graph, spec, num_gpus=args.gpus,
            config=TrainerConfig(seed=args.seed),
            retrain_epochs_per_generation=args.retrain_epochs,
        )
        weights = incremental.trainer.get_weights()
    else:
        weights = init_weights(spec.layer_dims, seed=args.seed)
    engine = DynamicServingEngine(
        graph, weights, spec,
        config=ServingConfig(machine=machine, num_gpus=args.gpus,
                             cache_entries=2 * dataset.n,
                             num_pinned=max(dataset.n // 100, 1),
                             max_batch_size=args.max_batch,
                             max_wait=args.max_wait),
        telemetry=telemetry,
        rebalancer=rebalancer,
        incremental=incremental,
    )
    requests = poisson_workload(dataset, args.requests, rate=args.rate,
                                skew=args.skew, seed=args.seed)
    if args.bursty:
        mutations = bursty_mutations(
            dataset, max(args.mutation_batches // 2, 1), burst_size=2,
            burst_rate=args.mutation_rate,
            edges_per_batch=args.edges_per_batch,
            skew=args.mutation_skew, seed=args.seed + 1)
    else:
        mutations = poisson_mutations(
            dataset, args.mutation_batches, rate=args.mutation_rate,
            edges_per_batch=args.edges_per_batch,
            skew=args.mutation_skew, seed=args.seed + 1)
    result = engine.run(requests, mutations)
    print(f"served {args.requests} requests across "
          f"{len(result.generations)} generations on {dataset.name} "
          f"(n={dataset.n:,}) @ {args.gpus}x {args.machine}")
    rows = [
        [
            str(g.generation),
            str(g.mutations_applied),
            str(g.rows_rebuilt),
            f"{g.cache_entries_delta_evicted}/{g.cache_flush_equivalent}",
            str(g.rebalance_moves),
            str(g.retrain_epochs),
            f"{g.num_vertices:,}",
            f"{g.num_edges:,}",
        ]
        for g in result.generations
    ]
    print(ascii_table(
        ["gen", "muts", "rows", "evicted/resident", "moves", "retrain",
         "vertices", "edges"],
        rows,
    ))
    s = result.summary
    flush = result.total_flush_equivalent
    frac = result.total_delta_evicted / flush if flush else 0.0
    print(ascii_table(["metric", "value"], [
        ["throughput", f"{s['throughput_rps']:,.0f} req/s"],
        ["p50 latency", format_seconds(s["latency_p50"])],
        ["p99 latency", format_seconds(s["latency_p99"])],
        ["cache hit rate", f"{s.get('cache_hit_rate', 0.0):.1%}"],
        ["delta-evicted fraction", f"{frac:.1%} of flush-equivalent"],
    ]))
    if args.snapshot:
        meta = {
            "dataset": args.dataset, "scale": args.scale,
            "machine": args.machine, "gpus": args.gpus,
            "requests": args.requests,
            "mutation_batches": args.mutation_batches,
            "retrain_epochs": args.retrain_epochs, "seed": args.seed,
        }
        write_snapshot(args.snapshot, telemetry.registry.flatten(), meta)
        print(f"wrote snapshot to {args.snapshot}")
    return 0


def _telemetry_run(args: argparse.Namespace) -> int:
    import json

    from repro.core import MGGCNTrainer, TrainerConfig
    from repro.datasets import load_dataset
    from repro.hardware import get_machine
    from repro.nn import GCNModelSpec
    from repro.telemetry import (
        Telemetry,
        merged_chrome_trace,
        render_summary,
        to_prometheus,
        write_jsonl,
        write_snapshot,
    )
    from repro.training import TrainingLoop

    telemetry = Telemetry(run_id=f"{args.dataset}-train",
                          trace_ops=args.trace_ops)
    dataset = load_dataset(args.dataset, scale=args.scale, learnable=True,
                           seed=args.seed)
    model = GCNModelSpec.build(dataset.d0, args.hidden, dataset.num_classes,
                               args.layers)
    trainer = MGGCNTrainer(
        dataset, model, machine=get_machine(args.machine),
        num_gpus=args.gpus,
        config=TrainerConfig(seed=args.seed, kernel_backend=args.backend),
    )
    loop = TrainingLoop(trainer, max_epochs=args.epochs, eval_every=0,
                        telemetry=telemetry)
    loop.run()
    sections = {"train": list(trainer.ctx.engine.trace)}

    if args.serve_requests > 0:
        from repro.nn.init import init_weights
        from repro.serve import ServingConfig, ServingEngine, poisson_workload

        serving = ServingEngine(
            dataset, init_weights(model.layer_dims, seed=args.seed), model,
            config=ServingConfig(machine=get_machine(args.machine),
                                 num_gpus=args.gpus,
                                 cache_entries=2 * dataset.n,
                                 num_pinned=max(dataset.n // 100, 1)),
            telemetry=telemetry,
        )
        serving.warm_cache()
        serving.serve(poisson_workload(dataset, args.serve_requests,
                                       rate=2000.0, seed=args.seed))
        sections["serve"] = list(serving.ctx.engine.trace)

    print(render_summary(telemetry.registry, telemetry.tracer))
    meta = {
        "dataset": args.dataset, "scale": args.scale,
        "machine": args.machine, "gpus": args.gpus,
        "epochs": args.epochs, "serve_requests": args.serve_requests,
        "seed": args.seed,
    }
    if args.snapshot:
        write_snapshot(args.snapshot, telemetry.registry.flatten(), meta)
        print(f"wrote snapshot to {args.snapshot}")
    if args.prometheus:
        with open(args.prometheus, "w", encoding="utf-8") as fh:
            fh.write(to_prometheus(telemetry.registry))
        print(f"wrote Prometheus exposition to {args.prometheus}")
    if args.trace:
        with open(args.trace, "w", encoding="utf-8") as fh:
            json.dump(merged_chrome_trace(sections, telemetry.tracer), fh)
        print(f"wrote merged Chrome trace to {args.trace}")
    if args.jsonl:
        write_jsonl(args.jsonl, telemetry.registry, telemetry.tracer,
                    meta=meta)
        print(f"wrote JSONL export to {args.jsonl}")
    return 0


def _telemetry_why(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.telemetry.critpath import critical_path, critpath_to_chrome_events

    if os.path.exists(args.target):
        # postmortem-bundle mode: attribute the black box after the fact.
        from repro.telemetry.flightrec import (
            bundle_events,
            bundle_to_chrome_trace,
            load_bundle,
        )

        bundle = load_bundle(args.target)
        meta = bundle.get("meta", {})
        trigger = meta.get("trigger", "?")
        print(f"flight bundle: trigger={trigger} t={meta.get('time', 0):g} "
              f"run={meta.get('run_id', '?')}")
        reports = {}
        for section, events in sorted(bundle_events(bundle).items()):
            report = critical_path(events)
            reports[section] = report
            print(f"\nsection [{section}] "
                  f"({len(events)} recorded ops in window)")
            print(report.render(top=args.top))
        annotations = [
            r for r in bundle.get("records", ()) if r.get("kind") != "op"
        ]
        if annotations:
            print(f"\nannotations ({len(annotations)}):")
            for r in annotations[-20:]:
                kind = r.get("kind")
                rest = {k: v for k, v in r.items() if k != "kind"}
                print(f"  {kind}: {json.dumps(rest, sort_keys=True)}")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump({s: r.to_dict() for s, r in reports.items()},
                          fh, indent=2, sort_keys=True)
            print(f"\nwrote reports to {args.json}")
        if args.trace:
            events = bundle_to_chrome_trace(bundle)
            for report in reports.values():
                events.extend(critpath_to_chrome_events(report))
            with open(args.trace, "w", encoding="utf-8") as fh:
                json.dump(events, fh)
            print(f"wrote Chrome trace to {args.trace}")
        return 0

    # dataset mode: run an instrumented training and attribute an epoch.
    from repro.core import MGGCNTrainer, TrainerConfig
    from repro.datasets import load_dataset
    from repro.errors import ConfigurationError
    from repro.hardware import get_machine
    from repro.nn import GCNModelSpec
    from repro.profiling.trace_export import merge_chrome_traces
    from repro.telemetry import Telemetry
    from repro.training import TrainingLoop

    telemetry = Telemetry(run_id=f"{args.target}-why")
    dataset = load_dataset(args.target, scale=args.scale, learnable=True,
                           seed=args.seed)
    model = GCNModelSpec.build(dataset.d0, args.hidden, dataset.num_classes,
                               args.layers)
    trainer = MGGCNTrainer(
        dataset, model, machine=get_machine(args.machine),
        num_gpus=args.gpus, config=TrainerConfig(seed=args.seed),
    )
    loop = TrainingLoop(trainer, max_epochs=args.epochs, eval_every=0,
                        telemetry=telemetry, critpath_every=1)
    loop.run()
    times = loop.history.epoch_times
    if args.epoch is not None:
        if not (1 <= args.epoch <= len(times)):
            raise ConfigurationError(
                f"--epoch {args.epoch} outside trained range "
                f"1..{len(times)}"
            )
        epoch = args.epoch
    else:
        epoch = max(range(1, len(times) + 1), key=lambda e: times[e - 1])
    report = loop.critpath_reports[epoch]
    print(f"{dataset.name}: {len(times)} epochs on {args.gpus}x "
          f"{args.machine}; attributing epoch {epoch} "
          f"({times[epoch - 1]:.6g} s"
          + (", slowest)" if args.epoch is None else ")"))
    print(report.render(top=args.top))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({str(e): r.to_dict()
                       for e, r in sorted(loop.critpath_reports.items())},
                      fh, indent=2, sort_keys=True)
        print(f"wrote per-epoch reports to {args.json}")
    if args.trace:
        events = merge_chrome_traces(
            {"train": list(trainer.ctx.engine.trace)},
            extra_events=critpath_to_chrome_events(report),
        )
        with open(args.trace, "w", encoding="utf-8") as fh:
            json.dump(events, fh)
        print(f"wrote Chrome trace to {args.trace}")
    return 0


def _telemetry_summary(args: argparse.Namespace) -> int:
    from repro.telemetry import load_metrics

    metrics = load_metrics(args.snapshot)
    width = max((len(name) for name in metrics), default=0)
    for name in sorted(metrics):
        print(f"{name:<{width}}  {metrics[name]:g}")
    print(f"({len(metrics)} metrics)")
    return 0


def _telemetry_diff(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.telemetry import DEFAULT_RTOL, diff_metrics, load_metrics

    tolerances = {}
    for spec in args.tolerance:
        pattern, sep, rtol = spec.rpartition("=")
        if not sep or not pattern:
            raise ConfigurationError(
                f"--tolerance wants PATTERN=RTOL, got {spec!r}"
            )
        try:
            tolerances[pattern] = float(rtol)
        except ValueError:
            raise ConfigurationError(
                f"--tolerance {spec!r}: {rtol!r} is not a number"
            ) from None
    result = diff_metrics(
        load_metrics(args.baseline),
        load_metrics(args.current),
        default_rtol=DEFAULT_RTOL if args.rtol is None else args.rtol,
        tolerances=tolerances or None,
        ignore=args.ignore,
    )
    print(result.report())
    return 0 if result.passed else 1


def _cmd_telemetry(args: argparse.Namespace) -> int:
    return {
        "run": _telemetry_run,
        "why": _telemetry_why,
        "summary": _telemetry_summary,
        "diff": _telemetry_diff,
    }[args.telemetry_command](args)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report

    write_report(args.output, include_slow=args.include_slow)
    print(f"wrote {args.output}")
    return 0


_COMMANDS = {
    "train": _cmd_train,
    "experiment": _cmd_experiment,
    "datasets": _cmd_datasets,
    "machines": _cmd_machines,
    "backends": _cmd_backends,
    "plan": _cmd_plan,
    "parallel": _cmd_parallel,
    "report": _cmd_report,
    "serve-bench": _cmd_serve_bench,
    "dynamic": _cmd_dynamic,
    "telemetry": _cmd_telemetry,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except DeviceOutOfMemoryError as err:
        print(f"out of device memory: {err}", file=sys.stderr)
        return 2
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
