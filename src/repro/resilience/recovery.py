"""Elastic recovery: survive permanent device failure and keep training.

:class:`ElasticTrainer` wraps :class:`~repro.core.trainer.MGGCNTrainer`
with the recovery protocol of production data-parallel systems
(torchelastic, DeepSpeed's elasticity): when a collective or kernel
surfaces a :class:`~repro.errors.DeviceFailedError`, the trainer

1. **checkpoints from a surviving replica** — weights/Adam state are
   replicated (§4.1), so rank 0 of the shrunken world holds the exact
   model as of the last completed optimizer step; the state is staged
   through :mod:`repro.nn.checkpoint` (atomic, checksummed);
2. **re-partitions the graph 1D** across the surviving GPUs via
   :func:`~repro.core.partitioner.partition_dataset` (same permutation
   seed, so the layout is deterministic);
3. **rebuilds buffers and re-broadcasts** the restored weights to every
   surviving replica;
4. **replays** any epochs lost since the last checkpoint and resumes.

All recovery work is costed as discrete events on the simulated
timeline (``recovery/checkpoint_restore``, ``recovery/repartition``,
``recovery/bcast_w*``), and the pre-failure trace is carried over so
one continuous timeline spans the failure. In FUNCTIONAL mode the
recovered run computes the same training trajectory as an uninterrupted
one (the epoch math is GPU-count invariant), which the integration
tests assert at ``rtol=1e-5``.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Union

from repro.config import FLOAT_SIZE, INDEX_SIZE
from repro.core.trainer import MGGCNTrainer, TrainerConfig
from repro.datasets.loader import Dataset
from repro.device.tensor import Mode
from repro.errors import ConfigurationError, DeviceFailedError, RecoveryError
from repro.hardware.machines import dgx1
from repro.hardware.spec import MachineSpec
from repro.nn.checkpoint import load_checkpoint, save_checkpoint
from repro.nn.model import GCNModelSpec
from repro.resilience.faults import (
    CollectiveFault,
    DeviceFailure,
    FaultPlan,
    LinkDegradation,
    StragglerSlowdown,
)
from repro.resilience.injector import FaultInjector
from repro.resilience.policy import RecoveryPolicy


@dataclass(frozen=True)
class RecoveryEvent:
    """One completed elastic recovery."""

    failed_rank: int
    failed_at: float
    detected_at: float
    recovered_at: float
    survivors: int
    replayed_epochs: int

    @property
    def recovery_cost(self) -> float:
        """Simulated seconds from detection to a training-ready world."""
        return self.recovered_at - self.detected_at


def remap_plan(
    plan: FaultPlan,
    survivors: Sequence[int],
    collective_budget: Optional[Sequence[int]] = None,
) -> FaultPlan:
    """Renumber a plan's ranks after shrinking the world to ``survivors``.

    ``survivors`` lists the old logical ranks that remain, in new-rank
    order; faults addressing retired ranks are dropped, and
    ``collective_budget`` (remaining transient failures per window)
    replaces each window's original budget.
    """
    logical = {int(p): l for l, p in enumerate(survivors)}
    failures = tuple(
        DeviceFailure(rank=logical[f.rank], time=f.time)
        for f in plan.device_failures
        if f.rank in logical
    )
    stragglers = tuple(
        StragglerSlowdown(
            rank=logical[s.rank], factor=s.factor, start=s.start, end=s.end
        )
        for s in plan.stragglers
        if s.rank in logical
    )
    degradations = []
    for d in plan.link_degradations:
        if d.ranks is None:
            degradations.append(d)
            continue
        mapped = tuple(sorted(logical[r] for r in d.ranks if r in logical))
        if mapped:
            degradations.append(
                LinkDegradation(
                    factor=d.factor, start=d.start, end=d.end, ranks=mapped
                )
            )
    if collective_budget is None:
        collective_budget = [f.failures for f in plan.collective_faults]
    collective = tuple(
        CollectiveFault(start=f.start, end=f.end, failures=int(remaining))
        for f, remaining in zip(plan.collective_faults, collective_budget)
        if remaining > 0
    )
    return FaultPlan(
        device_failures=failures,
        link_degradations=tuple(degradations),
        stragglers=stragglers,
        collective_faults=collective,
    )


class ElasticTrainer:
    """An MG-GCN trainer that survives permanent device failures.

    Drop-in for :class:`MGGCNTrainer` in the training loop: exposes
    ``train_epoch`` / ``fit`` / ``evaluate`` / ``predict`` /
    ``get_weights``. With an empty fault plan it is a transparent
    wrapper; with injected device failures it shrinks the world and
    continues (up to ``policy.max_failures`` times).
    """

    def __init__(
        self,
        dataset: Dataset,
        model: GCNModelSpec,
        machine: Optional[MachineSpec] = None,
        num_gpus: Optional[int] = None,
        config: Optional[TrainerConfig] = None,
        plan: Optional[FaultPlan] = None,
        injector: Optional[FaultInjector] = None,
        policy: Optional[RecoveryPolicy] = None,
    ):
        if dataset.is_symbolic:
            raise ConfigurationError(
                "elastic recovery requires a functional dataset (the "
                "recovered-run convergence guarantee is a FUNCTIONAL-mode "
                "property); inject faults into a plain MGGCNTrainer for "
                "symbolic timing studies"
            )
        self.dataset = dataset
        self.model = model
        self.machine = machine or dgx1()
        self.policy = policy or RecoveryPolicy()
        if injector is not None and plan is not None:
            raise ConfigurationError("pass either plan or injector, not both")
        self.injector = injector if injector is not None else FaultInjector(plan)
        base = config or TrainerConfig()
        timeout = (
            base.collective_timeout
            if base.collective_timeout is not None
            else self.policy.detection_timeout
        )
        self._base_config = replace(
            base, fault_injector=self.injector, collective_timeout=timeout
        )
        self.trainer = MGGCNTrainer(
            dataset,
            model,
            machine=self.machine,
            num_gpus=num_gpus,
            config=self._base_config,
        )
        #: completed recoveries, in order.
        self.recovery_log: List[RecoveryEvent] = []
        self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-elastic-")
        self._ckpt_path = os.path.join(self._tmpdir.name, "elastic.npz")
        self._ckpt_epoch = 0
        save_checkpoint(self.trainer, self._ckpt_path)

    # -- convenience --------------------------------------------------------

    @property
    def num_gpus(self) -> int:
        return self.trainer.ctx.num_gpus

    @property
    def ctx(self):
        return self.trainer.ctx

    @property
    def mode(self) -> Mode:
        return self.trainer.mode

    @property
    def epochs_trained(self) -> int:
        return self.trainer.epochs_trained

    @property
    def capture_epochs(self) -> bool:
        """Epoch capture & replay flag (:mod:`repro.plan`).

        Setting it also updates the base config so trainers rebuilt by
        elastic recovery keep the flag — each recovery constructs a fresh
        :class:`MGGCNTrainer`, which implicitly drops any captured plan
        (the re-partitioned world invalidates it) and recaptures on the
        shrunken world once the remapped fault plan is trivial again.
        """
        return self.trainer.capture_epochs

    @capture_epochs.setter
    def capture_epochs(self, value: bool) -> None:
        value = bool(value)
        self._base_config = replace(self._base_config, capture_epochs=value)
        self.trainer.capture_epochs = value

    @property
    def plan_stats(self):
        """The live trainer's capture/replay counters (resets on recovery)."""
        return self.trainer.plan_stats

    def get_weights(self):
        return self.trainer.get_weights()

    def evaluate(self, split: str = "test") -> float:
        return self.trainer.evaluate(split)

    def predict(self):
        return self.trainer.predict()

    # -- training -----------------------------------------------------------

    def train_epoch(self):
        """One epoch; transparently recovers from device failure."""
        while True:
            try:
                stats = self.trainer.train_epoch()
            except DeviceFailedError as exc:
                if not self.policy.auto_recover:
                    raise
                self.recover(exc)
                continue
            self._maybe_checkpoint()
            return stats

    def fit(self, epochs: int):
        if epochs < 0:
            raise ConfigurationError(f"epochs must be >= 0, got {epochs}")
        return [self.train_epoch() for _ in range(epochs)]

    def _maybe_checkpoint(self) -> None:
        if self.trainer.epochs_trained % self.policy.checkpoint_every == 0:
            save_checkpoint(self.trainer, self._ckpt_path)
            self._ckpt_epoch = self.trainer.epochs_trained

    # -- recovery protocol --------------------------------------------------

    def recover(self, failure: DeviceFailedError) -> RecoveryEvent:
        """Shrink the world past ``failure`` and restore training state."""
        if len(self.recovery_log) >= self.policy.max_failures:
            raise RecoveryError(
                f"failure budget exhausted ({self.policy.max_failures}); "
                f"rank {failure.rank} failed at t={failure.failed_at:.6f}s"
            )
        old = self.trainer
        P = old.ctx.num_gpus
        if not (0 <= failure.rank < P):
            raise RecoveryError(
                f"failed rank {failure.rank} outside world of size {P}"
            )
        target_epoch = old.epochs_trained
        detect = max(failure.detected_at, old.ctx.elapsed())
        # near-simultaneous failures: drop every rank already dead by the
        # time the failure is detected, not just the one that surfaced.
        survivors = [
            r
            for r in range(P)
            if r != failure.rank
            and (
                self.injector.device_failure_time(r) is None
                or self.injector.device_failure_time(r) > detect
            )
        ]
        if not survivors:
            raise RecoveryError("no surviving GPUs to recover onto")
        old_trace = list(old.ctx.engine.trace)
        telemetry = getattr(old.ctx.engine, "telemetry", None)
        span = None
        if telemetry is not None:
            span = telemetry.tracer.begin(
                "recovery",
                detect,
                correlation=f"recovery-{len(self.recovery_log)}",
                category="recovery",
                failed_rank=failure.rank,
            )
            flight_note = getattr(telemetry, "flight_note", None)
            if flight_note is not None:
                flight_note(
                    "fault",
                    time=detect,
                    rank=failure.rank,
                    failed_at=failure.failed_at,
                    survivors=len(survivors),
                )

        # shrink the injector's world to the survivors' new numbering,
        # carrying over whatever transient-fault budget remains.
        new_injector = FaultInjector(
            remap_plan(
                self.injector.plan,
                survivors,
                self.injector.collective_budget_remaining(),
            )
        )
        self.injector = new_injector
        cfg = replace(self._base_config, fault_injector=new_injector)
        self._base_config = cfg
        new_trainer = MGGCNTrainer(
            self.dataset,
            self.model,
            machine=self.machine,
            num_gpus=len(survivors),
            config=cfg,
        )

        # one continuous timeline across the failure: carry the old trace,
        # then cost the recovery protocol as discrete events.
        ctx = new_trainer.ctx
        engine = ctx.engine
        # the telemetry hub outlives the engine it was attached to: carry
        # it over so counters/spans stay continuous across the failure.
        engine.telemetry = telemetry
        if engine.record_trace:
            engine.record_events(old_trace)
        for s in ctx.all_streams():
            s.ready_time = detect
        state_bytes = 3 * sum(w.nbytes for w in new_trainer.weights[0])
        graph_bytes = self.dataset.features.nbytes + self.dataset.m * (
            2 * INDEX_SIZE + FLOAT_SIZE
        )
        stream0 = ctx.device(0).compute_stream
        engine.submit(
            stream0,
            "recovery/checkpoint_restore",
            "recovery",
            state_bytes / self.policy.host_bandwidth,
        )
        engine.submit(
            stream0,
            "recovery/repartition",
            "recovery",
            graph_bytes / self.policy.host_bandwidth,
        )
        engine.barrier(ctx.all_streams())

        # restore the surviving replica's state and fan it back out.
        load_checkpoint(new_trainer, self._ckpt_path)
        try:
            if len(survivors) > 1:
                for layer in range(self.model.num_layers):
                    new_trainer.comm.broadcast(
                        0,
                        new_trainer.weights[0][layer],
                        {
                            r: new_trainer.weights[r][layer]
                            for r in range(len(survivors))
                            if r != 0
                        },
                        name=f"recovery/bcast_w{layer}",
                    )
            recovered_at = ctx.synchronize()
        except DeviceFailedError as next_failure:
            # another device died during the recovery itself: commit the
            # shrunken world, log this (aborted) recovery at its give-up
            # time, and recover again from there.
            self.trainer = new_trainer
            aborted = RecoveryEvent(
                failed_rank=failure.rank,
                failed_at=failure.failed_at,
                detected_at=detect,
                recovered_at=next_failure.detected_at,
                survivors=len(survivors),
                replayed_epochs=0,
            )
            self.recovery_log.append(aborted)
            if telemetry is not None:
                telemetry.tracer.end(span, next_failure.detected_at)
                telemetry.inc("repro_recoveries_total", outcome="aborted")
                telemetry.observe(
                    "repro_recovery_cost_seconds", aborted.recovery_cost
                )
                dump = getattr(telemetry, "dump_postmortem", None)
                if dump is not None:
                    dump(
                        "recovery",
                        time=next_failure.detected_at,
                        outcome="aborted",
                        failed_rank=failure.rank,
                        survivors=len(survivors),
                    )
            return self.recover(next_failure)
        self.trainer = new_trainer
        event = RecoveryEvent(
            failed_rank=failure.rank,
            failed_at=failure.failed_at,
            detected_at=detect,
            recovered_at=recovered_at,
            survivors=len(survivors),
            replayed_epochs=max(target_epoch - self._ckpt_epoch, 0),
        )
        self.recovery_log.append(event)
        if telemetry is not None:
            telemetry.tracer.end(span, recovered_at)
            telemetry.inc("repro_recoveries_total", outcome="recovered")
            telemetry.observe("repro_recovery_cost_seconds", event.recovery_cost)
            dump = getattr(telemetry, "dump_postmortem", None)
            if dump is not None:
                dump(
                    "recovery",
                    time=recovered_at,
                    outcome="recovered",
                    failed_rank=failure.rank,
                    survivors=len(survivors),
                )

        # replay epochs lost since the last checkpoint; a further failure
        # during replay recurses (bounded by the failure budget).
        while self.trainer.epochs_trained < target_epoch:
            try:
                self.trainer.train_epoch()
            except DeviceFailedError as exc:
                self.recover(exc)
        return event
