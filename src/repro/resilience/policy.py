"""Retry and recovery policies.

:class:`RetryPolicy` governs transiently failing collectives (how many
attempts, how the backoff grows); :class:`RecoveryPolicy` governs what
the elastic trainer does when a device permanently dies (how often to
checkpoint, how many failures to absorb, how recovery work is costed on
the simulated timeline).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_COLLECTIVE_TIMEOUT,
    DEFAULT_HOST_BANDWIDTH,
    DEFAULT_MAX_RETRIES,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry budget for transient collective faults."""

    max_retries: int = DEFAULT_MAX_RETRIES
    backoff_base: float = DEFAULT_BACKOFF_BASE
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0:
            raise ConfigurationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )

    def backoff(self, attempt: int) -> float:
        """Delay before retrying after failed attempt ``attempt`` (0-based)."""
        if attempt < 0:
            raise ConfigurationError(f"negative attempt index {attempt}")
        return self.backoff_base * self.backoff_multiplier**attempt

    def total_backoff(self, attempts: int) -> float:
        """Cumulative backoff charged across ``attempts`` failed attempts."""
        return sum(self.backoff(k) for k in range(attempts))


@dataclass(frozen=True)
class RecoveryPolicy:
    """Elastic-recovery behaviour of :class:`~repro.resilience.recovery.ElasticTrainer`."""

    #: checkpoint the surviving-replica state every N completed epochs
    #: (1 = every epoch boundary; larger values trade replay work for
    #: less checkpoint traffic).
    checkpoint_every: int = 1
    #: absorb at most this many permanent device failures before giving up.
    max_failures: int = 3
    #: recover inside ``train_epoch`` (True) or re-raise and let the
    #: caller (e.g. TrainingLoop with ``recover_on_failure``) drive it.
    auto_recover: bool = True
    #: host<->device staging bandwidth used to cost the checkpoint
    #: restore and graph re-partition events, B/s.
    host_bandwidth: float = DEFAULT_HOST_BANDWIDTH
    #: watchdog charged when a collective detects a dead peer, seconds.
    detection_timeout: float = DEFAULT_COLLECTIVE_TIMEOUT

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.max_failures < 0:
            raise ConfigurationError(
                f"max_failures must be >= 0, got {self.max_failures}"
            )
        if self.host_bandwidth <= 0:
            raise ConfigurationError(
                f"host_bandwidth must be > 0, got {self.host_bandwidth}"
            )
        if self.detection_timeout < 0:
            raise ConfigurationError(
                f"detection_timeout must be >= 0, got {self.detection_timeout}"
            )
