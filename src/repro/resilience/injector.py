"""The runtime side of fault injection.

A :class:`FaultInjector` wraps a :class:`~repro.resilience.faults.FaultPlan`
and answers the questions the substrate asks while it schedules ops:

* engine: *"is this device alive at time t? how much slower is it?"*
* topology/collectives: *"what bandwidth factor applies at time t?"*,
  *"does this collective attempt fail transiently?"*

The injector is attached to a :class:`~repro.device.engine.SimContext`
(and from there reaches the engine and topology); every consumer guards
with ``injector is None or injector.is_trivial`` so that fault-free runs
take exactly the pre-existing code path — the zero-cost-abstraction
guarantee the benchmarks assert.

The only mutable state is the per-window budget of transient collective
faults (``reset()`` restores it), so a given plan deterministically
produces the same injected behaviour on every run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import DeviceFailedError
from repro.resilience.faults import DeviceFailure, FaultPlan
from repro.utils.rng import SeedLike, as_generator


class FaultInjector:
    """Consults a :class:`FaultPlan` on behalf of the substrate."""

    def __init__(self, plan: Optional[FaultPlan] = None, seed: SeedLike = None):
        self.plan = plan if plan is not None else FaultPlan()
        #: generator reserved for consumers that want runtime jitter;
        #: the injector itself is fully determined by the plan.
        self.rng = as_generator(seed)
        self._fail_time: Dict[int, float] = {
            f.rank: f.time for f in self.plan.device_failures
        }
        self._collective_budget: List[int] = [
            f.failures for f in self.plan.collective_faults
        ]

    @property
    def is_trivial(self) -> bool:
        """True when the plan injects nothing (fast-path guard)."""
        return self.plan.is_empty

    def reset(self) -> None:
        """Restore consumable budgets (fresh run of the same plan)."""
        self._collective_budget = [
            f.failures for f in self.plan.collective_faults
        ]

    def collective_budget_remaining(self) -> List[int]:
        """Unconsumed transient failures per window (plan order)."""
        return list(self._collective_budget)

    # -- device failures -----------------------------------------------------

    def device_failure_time(self, rank: int) -> Optional[float]:
        """The time at which ``rank`` dies, or None if it never does."""
        return self._fail_time.get(rank)

    def check_device(self, device: str, rank: int, time: float) -> None:
        """Raise :class:`DeviceFailedError` if ``rank`` is dead at ``time``."""
        failed_at = self._fail_time.get(rank)
        if failed_at is not None and time >= failed_at:
            raise DeviceFailedError(
                device=device, rank=rank, failed_at=failed_at, detected_at=time
            )

    def first_failure_among(
        self, ranks: Sequence[int], before: float
    ) -> Optional[DeviceFailure]:
        """Earliest device failure among ``ranks`` strictly before ``before``."""
        best: Optional[DeviceFailure] = None
        for r in ranks:
            t = self._fail_time.get(int(r))
            if t is not None and t < before:
                if best is None or t < best.time:
                    best = DeviceFailure(rank=int(r), time=t)
        return best

    def surviving_ranks(self, ranks: Sequence[int], time: float) -> List[int]:
        """The subset of ``ranks`` still alive at ``time``."""
        out = []
        for r in ranks:
            t = self._fail_time.get(int(r))
            if t is None or t > time:
                out.append(int(r))
        return out

    # -- stragglers ---------------------------------------------------------

    def compute_factor(self, rank: int, time: float) -> float:
        """Kernel-duration multiplier for ``rank`` at ``time`` (>= 1)."""
        factor = 1.0
        for s in self.plan.stragglers:
            if s.rank == rank and s.active(time):
                factor *= s.factor
        return factor

    # -- link degradation ---------------------------------------------------

    def bandwidth_factor(
        self, time: float, ranks: Optional[Sequence[int]] = None
    ) -> float:
        """Bandwidth multiplier in (0, 1] for a collective at ``time``."""
        factor = 1.0
        for d in self.plan.link_degradations:
            if d.active(time) and d.applies_to(ranks):
                factor = min(factor, d.factor)
        return factor

    # -- transient collective faults ----------------------------------------

    def take_collective_fault(self, time: float) -> bool:
        """Consume one transient failure active at ``time``, if any.

        Returns True when the current collective attempt should fail;
        the budget of the matching window is decremented so retries
        eventually succeed (unless the plan says otherwise).
        """
        for idx, fault in enumerate(self.plan.collective_faults):
            if fault.active(time) and self._collective_budget[idx] > 0:
                self._collective_budget[idx] -= 1
                return True
        return False
