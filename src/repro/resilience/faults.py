"""Fault models: what can go wrong, and when.

A :class:`FaultPlan` is an immutable, declarative schedule of injected
faults over simulated time. Four fault classes cover the failure modes
that dominate real multi-GPU/distributed GNN training (DistGNN's node
loss and stragglers, CaPGNN's degraded heterogeneous links):

* :class:`DeviceFailure` — a GPU dies permanently at time ``t`` (ECC
  double-bit error, XID 79 "fell off the bus", host OOM-kill);
* :class:`LinkDegradation` — collective bandwidth is multiplied by
  ``factor`` over a window (thermal throttling, PCIe downtraining,
  congested NIC);
* :class:`StragglerSlowdown` — one device's kernels dilate by
  ``factor`` over a window (clock throttling, noisy neighbour);
* :class:`CollectiveFault` — the next ``failures`` collective attempts
  inside a window fail transiently and must be retried.

Plans are either hand-written (tests, targeted scenarios) or sampled
with :meth:`FaultPlan.random` from a ``numpy.random.Generator`` seed —
the same seed always yields the same schedule, so chaos experiments are
exactly reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class DeviceFailure:
    """Permanent failure of one device at simulated time ``time``."""

    rank: int
    time: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"negative rank {self.rank}")
        if self.time < 0:
            raise ConfigurationError(f"negative failure time {self.time}")


@dataclass(frozen=True)
class LinkDegradation:
    """Bandwidth multiplier ``factor`` applied over ``[start, end)``.

    ``ranks`` restricts the degradation to collectives touching any of
    those ranks; ``None`` degrades every link of the machine.
    """

    factor: float
    start: float
    end: float
    ranks: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not (0.0 < self.factor <= 1.0):
            raise ConfigurationError(
                f"degradation factor must be in (0, 1], got {self.factor}"
            )
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"invalid degradation window [{self.start}, {self.end})"
            )
        if self.ranks is not None:
            object.__setattr__(self, "ranks", tuple(int(r) for r in self.ranks))

    def active(self, time: float) -> bool:
        return self.start <= time < self.end

    def applies_to(self, ranks: Optional[Sequence[int]]) -> bool:
        if self.ranks is None or ranks is None:
            return True
        return bool(set(self.ranks) & {int(r) for r in ranks})


@dataclass(frozen=True)
class StragglerSlowdown:
    """Compute-time dilation ``factor`` (>= 1) on ``rank`` over a window."""

    rank: int
    factor: float
    start: float
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"negative rank {self.rank}")
        if self.factor < 1.0:
            raise ConfigurationError(
                f"straggler factor must be >= 1, got {self.factor}"
            )
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"invalid straggler window [{self.start}, {self.end})"
            )

    def active(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class CollectiveFault:
    """``failures`` transient collective failures inside ``[start, end)``.

    Each collective attempt whose rendezvous start falls in the window
    consumes one failure from the budget and must be retried; once the
    budget is spent the window is inert.
    """

    start: float
    end: float
    failures: int = 1

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"invalid collective-fault window [{self.start}, {self.end})"
            )
        if self.failures < 1:
            raise ConfigurationError(
                f"failures must be >= 1, got {self.failures}"
            )

    def active(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of injected faults.

    The empty plan is the common case and is treated as a zero-cost
    no-op by every consumer (engine, topology, collectives).
    """

    device_failures: Tuple[DeviceFailure, ...] = ()
    link_degradations: Tuple[LinkDegradation, ...] = ()
    stragglers: Tuple[StragglerSlowdown, ...] = ()
    collective_faults: Tuple[CollectiveFault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "device_failures", tuple(self.device_failures)
        )
        object.__setattr__(
            self, "link_degradations", tuple(self.link_degradations)
        )
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        object.__setattr__(
            self, "collective_faults", tuple(self.collective_faults)
        )
        seen = set()
        for f in self.device_failures:
            if f.rank in seen:
                raise ConfigurationError(
                    f"rank {f.rank} fails more than once in the plan"
                )
            seen.add(f.rank)

    @property
    def is_empty(self) -> bool:
        return not (
            self.device_failures
            or self.link_degradations
            or self.stragglers
            or self.collective_faults
        )

    @property
    def num_faults(self) -> int:
        return (
            len(self.device_failures)
            + len(self.link_degradations)
            + len(self.stragglers)
            + len(self.collective_faults)
        )

    @staticmethod
    def empty() -> "FaultPlan":
        return FaultPlan()

    def failed_ranks_before(self, time: float) -> Tuple[int, ...]:
        """Ranks whose permanent failure time is at or before ``time``.

        Sorted by failure time — consumers that react to failures one at
        a time (the serving engine's degraded-mode transition) process
        them in the order they occur on the simulated clock.
        """
        struck = sorted(
            (f for f in self.device_failures if f.time <= time),
            key=lambda f: (f.time, f.rank),
        )
        return tuple(f.rank for f in struck)

    @staticmethod
    def random(
        num_gpus: int,
        horizon: float,
        seed: SeedLike = None,
        device_failure_rate: float = 0.0,
        link_degradation_rate: float = 0.0,
        straggler_rate: float = 0.0,
        collective_fault_rate: float = 0.0,
        degradation_factor: float = 0.5,
        straggler_factor: float = 2.0,
        window: float = 0.1,
    ) -> "FaultPlan":
        """Sample a fault schedule over ``[0, horizon)`` seconds.

        Each ``*_rate`` is an expected event count per simulated second;
        counts are Poisson, times uniform, affected ranks uniform — all
        drawn from one :class:`numpy.random.Generator`, so the same seed
        always produces the same plan.
        """
        if num_gpus < 1:
            raise ConfigurationError(f"num_gpus must be >= 1, got {num_gpus}")
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon}")
        rng = as_generator(seed)

        def times(rate: float) -> list:
            count = int(rng.poisson(rate * horizon)) if rate > 0 else 0
            return sorted(float(t) for t in rng.uniform(0.0, horizon, size=count))

        failures = []
        failed = set()
        for t in times(device_failure_rate):
            candidates = [r for r in range(num_gpus) if r not in failed]
            # always leave at least one survivor for recovery
            if len(candidates) <= 1:
                break
            rank = int(rng.choice(candidates))
            failed.add(rank)
            failures.append(DeviceFailure(rank=rank, time=t))
        degradations = tuple(
            LinkDegradation(
                factor=degradation_factor, start=t, end=min(t + window, horizon)
            )
            for t in times(link_degradation_rate)
        )
        stragglers = tuple(
            StragglerSlowdown(
                rank=int(rng.integers(0, num_gpus)),
                factor=straggler_factor,
                start=t,
                end=min(t + window, horizon),
            )
            for t in times(straggler_rate)
        )
        collective = tuple(
            CollectiveFault(start=t, end=min(t + window, horizon))
            for t in times(collective_fault_rate)
        )
        return FaultPlan(
            device_failures=tuple(failures),
            link_degradations=degradations,
            stragglers=stragglers,
            collective_faults=collective,
        )
