"""repro.resilience: fault injection and elastic recovery.

Three layers:

* **Plans** (:mod:`~repro.resilience.faults`) — declarative, seeded
  fault schedules: device failures, link degradation windows,
  stragglers, transient collective faults.
* **Injection** (:mod:`~repro.resilience.injector`,
  :mod:`~repro.resilience.policy`) — the runtime hooks the engine,
  topology and collectives consult, plus retry/recovery policies.
* **Recovery** (:mod:`~repro.resilience.recovery`,
  :mod:`~repro.resilience.chaos`) — the elastic trainer that survives
  permanent device loss, and the chaos harness that sweeps scenarios.

``ElasticTrainer``/chaos are imported lazily: they depend on the
trainer stack, which itself imports the collectives (which import the
retry policy from here), so eager re-export would create a cycle.
"""

from __future__ import annotations

import importlib

from repro.resilience.faults import (
    CollectiveFault,
    DeviceFailure,
    FaultPlan,
    LinkDegradation,
    StragglerSlowdown,
)
from repro.resilience.injector import FaultInjector
from repro.resilience.policy import RecoveryPolicy, RetryPolicy

_LAZY = {
    "ElasticTrainer": "repro.resilience.recovery",
    "RecoveryEvent": "repro.resilience.recovery",
    "remap_plan": "repro.resilience.recovery",
    "ChaosReport": "repro.resilience.chaos",
    "ChaosScenario": "repro.resilience.chaos",
    "run_chaos_scenario": "repro.resilience.chaos",
}

__all__ = [
    "CollectiveFault",
    "DeviceFailure",
    "FaultPlan",
    "LinkDegradation",
    "StragglerSlowdown",
    "FaultInjector",
    "RecoveryPolicy",
    "RetryPolicy",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
