"""Chaos harness: run training under an injected fault scenario.

A :class:`ChaosScenario` bundles a workload (dataset/model/machine) with
a :class:`~repro.resilience.faults.FaultPlan` and a
:class:`~repro.resilience.policy.RecoveryPolicy`;
:func:`run_chaos_scenario` executes it end to end on an
:class:`~repro.resilience.recovery.ElasticTrainer` and distils the run
into a :class:`ChaosReport` — losses, recoveries, final world size, and
where the simulated time went (training vs recovery vs retries).

The benchmarks drive sweeps of randomly generated plans
(:meth:`FaultPlan.random`) through this harness to chart recovery cost
against fault rate; the tier-1 suite runs a single fast smoke scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.trainer import TrainerConfig
from repro.datasets.loader import Dataset
from repro.errors import ConfigurationError, DeviceFailedError
from repro.hardware.machines import dgx1
from repro.hardware.spec import MachineSpec
from repro.nn.model import GCNModelSpec
from repro.resilience.faults import FaultPlan
from repro.resilience.policy import RecoveryPolicy
from repro.resilience.recovery import ElasticTrainer, RecoveryEvent


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one chaos scenario run."""

    epochs: int
    losses: List[float]
    recoveries: List[RecoveryEvent]
    initial_gpus: int
    final_gpus: int
    total_time: float
    #: simulated seconds per trace category ("comm", "recovery", ...).
    time_by_category: Dict[str, float]
    test_accuracy: Optional[float] = None

    @property
    def num_recoveries(self) -> int:
        return len(self.recoveries)

    @property
    def recovery_time(self) -> float:
        """Total simulated detection-to-ready time across recoveries."""
        return sum(ev.recovery_cost for ev in self.recoveries)

    @property
    def survived(self) -> bool:
        """The run finished every epoch (possibly on a smaller world)."""
        return self.final_gpus >= 1


@dataclass(frozen=True)
class ChaosScenario:
    """A reproducible fault-injection experiment."""

    dataset: Dataset
    model: GCNModelSpec
    plan: FaultPlan
    epochs: int = 5
    num_gpus: Optional[int] = None
    machine: Optional[MachineSpec] = None
    policy: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    config: Optional[TrainerConfig] = None
    evaluate: bool = True

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {self.epochs}")

    def run(self) -> ChaosReport:
        return run_chaos_scenario(self)


def run_chaos_scenario(scenario: ChaosScenario) -> ChaosReport:
    """Execute ``scenario`` and summarise what happened."""
    machine = scenario.machine or dgx1()
    trainer = ElasticTrainer(
        scenario.dataset,
        scenario.model,
        machine=machine,
        num_gpus=scenario.num_gpus,
        config=scenario.config,
        plan=scenario.plan,
        policy=scenario.policy,
    )
    initial_gpus = trainer.num_gpus
    losses: List[float] = []
    for _ in range(scenario.epochs):
        stats = trainer.train_epoch()
        losses.append(stats.loss if stats.loss is not None else float("nan"))
    accuracy = None
    if scenario.evaluate:
        while True:
            try:
                accuracy = trainer.evaluate("test")
                break
            except DeviceFailedError as exc:
                # a planned failure landing after the last epoch hits the
                # evaluation forward pass; recover and retry.
                trainer.recover(exc)
    return ChaosReport(
        epochs=scenario.epochs,
        losses=losses,
        recoveries=list(trainer.recovery_log),
        initial_gpus=initial_gpus,
        final_gpus=trainer.num_gpus,
        total_time=trainer.ctx.elapsed(),
        time_by_category=trainer.ctx.engine.events_by_category(),
        test_accuracy=accuracy,
    )
