"""GCN adjacency normalisation.

The paper's model (eq. (2)) uses *in-degree averaging*:

.. math::

    \\hat A_{uv} = A_{uv} / \\sum_{w \\in N_i(v)} A_{wv}

i.e. column ``v`` of :math:`\\hat A` is scaled by the reciprocal of the
(weighted) in-degree of ``v``, so :math:`\\hat A^T H` averages each
vertex's in-neighbour features. This choice is what makes the first
layer's backward SpMM skippable (§4.4): the gradient scaling matrix is
the identity.

``symmetric`` normalisation (:math:`D^{-1/2} A D^{-1/2}`, Kipf & Welling)
is also provided for completeness.
"""

from __future__ import annotations

import numpy as np

from repro.config import FLOAT_DTYPE, OFFSET_DTYPE
from repro.errors import ShapeError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def add_self_loops(adj: COOMatrix, weight: float = 1.0) -> COOMatrix:
    """Return ``adj`` with a ``weight`` self-loop added to every vertex.

    Vertices that already have a self-loop get ``weight`` added to it
    (COO canonicalisation sums duplicates).
    """
    n = adj.shape[0]
    if adj.shape[0] != adj.shape[1]:
        raise ShapeError(f"adjacency must be square, got {adj.shape}")
    diag = np.arange(n, dtype=OFFSET_DTYPE)
    rows = np.concatenate([adj.rows, diag])
    cols = np.concatenate([adj.cols, diag])
    vals = np.concatenate(
        [adj.vals, np.full(n, weight, dtype=FLOAT_DTYPE)]
    )
    return COOMatrix(adj.shape, rows, cols, vals)


def gcn_normalize(adj: COOMatrix, method: str = "in_degree") -> CSRMatrix:
    """Normalise an adjacency matrix for GCN propagation.

    ``in_degree`` (paper's eq. (2)): divide each column by its weighted
    in-degree; zero-in-degree columns are left untouched (their features
    propagate nothing, matching the convention of the reference code).

    ``symmetric``: :math:`D^{-1/2} A D^{-1/2}` with ``D`` the weighted
    degree of the symmetrised graph.

    Returns the normalised matrix :math:`\\hat A` in CSR. The forward
    pass uses :math:`\\hat A^T` (call :meth:`CSRMatrix.transpose`).
    """
    if adj.shape[0] != adj.shape[1]:
        raise ShapeError(f"adjacency must be square, got {adj.shape}")
    csr = CSRMatrix.from_coo(adj)
    n = adj.shape[0]
    if method == "in_degree":
        in_degree = np.zeros(n, dtype=FLOAT_DTYPE)
        np.add.at(in_degree, adj.cols, adj.vals)
        inv = np.ones(n, dtype=FLOAT_DTYPE)
        nz = in_degree != 0
        inv[nz] = 1.0 / in_degree[nz]
        return csr.scale_cols(inv)
    if method == "symmetric":
        degree = np.zeros(n, dtype=FLOAT_DTYPE)
        np.add.at(degree, adj.rows, adj.vals)
        np.add.at(degree, adj.cols, adj.vals)
        degree *= 0.5
        inv_sqrt = np.ones(n, dtype=FLOAT_DTYPE)
        nz = degree > 0
        inv_sqrt[nz] = 1.0 / np.sqrt(degree[nz])
        return csr.scale_rows(inv_sqrt).scale_cols(inv_sqrt)
    raise ValueError(f"unknown normalisation method {method!r}")
