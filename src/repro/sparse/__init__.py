"""Sparse-matrix substrate: COO/CSR storage, tiling, permutation, normalisation."""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.normalize import gcn_normalize, add_self_loops
from repro.sparse.partition import (
    PartitionVector,
    uniform_partition,
    balanced_nnz_partition,
    tile_grid,
)
from repro.sparse.permutation import (
    bfs_permutation,
    random_permutation,
    identity_permutation,
    degree_sort_permutation,
    apply_permutation,
    invert_permutation,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "gcn_normalize",
    "add_self_loops",
    "PartitionVector",
    "uniform_partition",
    "balanced_nnz_partition",
    "tile_grid",
    "bfs_permutation",
    "random_permutation",
    "identity_permutation",
    "degree_sort_permutation",
    "apply_permutation",
    "invert_permutation",
]
