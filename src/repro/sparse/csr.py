"""Compressed Sparse Row matrices and the vectorised SpMM kernel.

CSR is the computation format, exactly as in the paper (cuSPARSE CSR
SpMM). The SpMM here is a pure-NumPy vectorised kernel: it gathers the
dense operand's rows for every nonzero and segment-sums them with
``np.add.reduceat`` — O(nnz * d) work with no Python-level loops over
nonzeros, following the vectorisation idioms of the HPC guides.

The class also provides the tiling operations (:meth:`row_block`,
:meth:`tile`) the 1D distribution of Section 4.1 is built from.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE, INDEX_DTYPE, OFFSET_DTYPE
from repro.errors import PartitionError, ShapeError
from repro.sparse.coo import COOMatrix

_CSR_MATVECS = False  # unresolved sentinel; None once probed and absent


def _csr_matvecs():
    """SciPy's compiled ``Y += A @ X`` CSR kernel, or ``None``.

    ``scipy.sparse._sparsetools.csr_matvecs`` accumulates directly into
    the output buffer, so :meth:`CSRMatrix.spmm_into` can feed it the
    destination tensor and skip both the operator-dispatch layer and the
    temporary product array. It is a private module, hence the guarded
    probe with a graceful ``None`` (callers fall back to ``A @ X``).
    """
    global _CSR_MATVECS
    if _CSR_MATVECS is False:
        try:
            from scipy.sparse._sparsetools import csr_matvecs
        except ImportError:  # pragma: no cover - scipy layout changed
            csr_matvecs = None
        _CSR_MATVECS = csr_matvecs
    return _CSR_MATVECS


def _concat_arange(counts: np.ndarray) -> np.ndarray:
    """``[arange(c) for c in counts]`` concatenated, without Python loops."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=OFFSET_DTYPE)
    ids = np.arange(total, dtype=OFFSET_DTYPE)
    starts = np.repeat(np.cumsum(counts) - counts, counts)
    return ids - starts


class CSRMatrix:
    """A sparse matrix in CSR format.

    Invariants:

    * ``indptr`` has length ``shape[0] + 1``, is non-decreasing, starts at
      0 and ends at ``nnz``;
    * ``indices[indptr[i]:indptr[i+1]]`` are the (sorted) column indices
      of row ``i``; ``vals`` holds the matching values.
    """

    __slots__ = (
        "shape", "indptr", "indices", "vals", "_scipy_cache", "_segment_cache",
        "_nnz", "_fast_spmm",
    )

    #: distinct feature-width buckets whose SpMM segment metadata is kept
    #: per matrix. GCN layers use a handful of widths, so this is ample;
    #: on overflow the cache is simply rebuilt.
    _SEGMENT_CACHE_LIMIT = 8

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        vals: np.ndarray,
        validate: bool = True,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=OFFSET_DTYPE)
        self.indices = np.asarray(indices, dtype=INDEX_DTYPE)
        self.vals = np.asarray(vals, dtype=FLOAT_DTYPE)
        self._scipy_cache = None
        self._segment_cache = None
        self._nnz = None
        self._fast_spmm = None
        if validate:
            self._validate()

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise ShapeError(f"negative matrix shape {self.shape}")
        if self.indptr.shape != (n_rows + 1,):
            raise ShapeError(
                f"indptr length {self.indptr.shape[0]} != rows+1 ({n_rows + 1})"
            )
        if self.indptr[0] != 0:
            raise ShapeError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ShapeError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape != (nnz,) or self.vals.shape != (nnz,):
            raise ShapeError(
                f"indices/vals length mismatch: {self.indices.shape[0]}, "
                f"{self.vals.shape[0]} vs nnz={nnz}"
            )
        if nnz and (self.indices.min() < 0 or self.indices.max() >= n_cols):
            raise ShapeError(f"column index out of range for {n_cols} cols")

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        """Convert a canonical COO matrix (sorted, deduplicated) to CSR."""
        n_rows, _ = coo.shape
        counts = np.zeros(n_rows, dtype=OFFSET_DTYPE)
        np.add.at(counts, coo.rows, 1)
        indptr = np.zeros(n_rows + 1, dtype=OFFSET_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            coo.shape,
            indptr,
            coo.cols.astype(INDEX_DTYPE),
            coo.vals,
            validate=False,
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build from a dense array (tests/small examples)."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeError(f"from_dense requires a 2-D array, got {dense.shape}")
        rows, cols = np.nonzero(dense)
        return cls.from_coo(
            COOMatrix(dense.shape, rows, cols, dense[rows, cols])
        )

    @classmethod
    def empty(cls, shape: Tuple[int, int]) -> "CSRMatrix":
        """A matrix with no stored entries."""
        return cls(
            shape,
            np.zeros(int(shape[0]) + 1, dtype=OFFSET_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=FLOAT_DTYPE),
            validate=False,
        )

    # -- queries ---------------------------------------------------------------

    @classmethod
    def hstack(cls, blocks: Sequence["CSRMatrix"]) -> "CSRMatrix":
        """Concatenate column blocks ``[B0 | B1 | ...]`` into one matrix.

        All blocks must have the same row count. Used by the replicated-
        operand SpMM scheme (:mod:`repro.parallel.strategies`): a rank's
        row of tiles, stacked into one wide matrix, multiplies the
        allgathered dense operand in a single kernel. Column indices stay
        sorted per row because each block's are and blocks shift
        monotonically.
        """
        if not blocks:
            raise ShapeError("hstack needs at least one block")
        n_rows = blocks[0].shape[0]
        for b in blocks:
            if b.shape[0] != n_rows:
                raise ShapeError(
                    f"hstack row mismatch: {b.shape[0]} != {n_rows}"
                )
        n_cols = sum(b.shape[1] for b in blocks)
        nnz_total = sum(b.nnz for b in blocks)
        indptr = np.zeros(n_rows + 1, dtype=OFFSET_DTYPE)
        for b in blocks:
            indptr[1:] += np.diff(b.indptr)
        np.cumsum(indptr, out=indptr)
        indices = np.empty(nnz_total, dtype=INDEX_DTYPE)
        vals = np.empty(nnz_total, dtype=FLOAT_DTYPE)
        cursor = indptr[:-1].copy()
        col0 = 0
        for b in blocks:
            counts = np.diff(b.indptr)
            take = counts.sum()
            if take:
                # destination slots for this block's entries, row by row
                dest = np.repeat(cursor, counts) + _concat_arange(counts)
                indices[dest] = b.indices + col0
                vals[dest] = b.vals
                cursor += counts
            col0 += b.shape[1]
        return cls((n_rows, n_cols), indptr, indices, vals, validate=False)

    @property
    def nnz(self) -> int:
        n = self._nnz
        if n is None:
            n = self._nnz = int(self.indptr[-1])
        return n

    @property
    def nbytes(self) -> int:
        """Device bytes of this matrix (indptr + indices + vals)."""
        return self.indptr.nbytes + self.indices.nbytes + self.vals.nbytes

    def row_nnz(self) -> np.ndarray:
        """Stored entries per row."""
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        """Dense copy (small matrices / tests only)."""
        out = np.zeros(self.shape, dtype=self.vals.dtype)
        rows = np.repeat(np.arange(self.shape[0]), self.row_nnz())
        out[rows, self.indices] = self.vals
        return out

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(np.arange(self.shape[0], dtype=OFFSET_DTYPE), self.row_nnz())
        return COOMatrix(
            self.shape, rows, self.indices.astype(OFFSET_DTYPE), self.vals,
            sum_duplicates=False,
        )

    def equals(self, other: "CSRMatrix") -> bool:
        """Structural equality: same shape, indptr, indices, and values.

        Bitwise on the stored arrays (``vals`` compared with
        ``np.array_equal``, so two NaN payloads differ) — no ``to_dense``
        round-trip, so it is safe at symbolic-scale shapes where a dense
        copy would not fit.
        """
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.vals, other.vals)
        )

    def transpose(self) -> "CSRMatrix":
        """CSR of the transposed matrix (a CSC view re-expressed as CSR)."""
        t = self._scipy().T.tocsr()
        t.sort_indices()
        return CSRMatrix(
            (self.shape[1], self.shape[0]),
            t.indptr.astype(OFFSET_DTYPE),
            t.indices.astype(INDEX_DTYPE),
            t.data.astype(FLOAT_DTYPE),
            validate=False,
        )

    # -- tiling (Section 4.1) ---------------------------------------------------

    def row_block(self, r0: int, r1: int) -> "CSRMatrix":
        """Rows ``[r0, r1)`` as a standalone CSR (columns unchanged)."""
        if not (0 <= r0 <= r1 <= self.shape[0]):
            raise PartitionError(
                f"row block [{r0}, {r1}) out of range for {self.shape[0]} rows"
            )
        lo, hi = int(self.indptr[r0]), int(self.indptr[r1])
        return CSRMatrix(
            (r1 - r0, self.shape[1]),
            self.indptr[r0 : r1 + 1] - lo,
            self.indices[lo:hi],
            self.vals[lo:hi],
            validate=False,
        )

    def tile(self, r0: int, r1: int, c0: int, c1: int) -> "CSRMatrix":
        """The sub-matrix ``[r0:r1, c0:c1]`` with re-based column indices.

        This is the :math:`A^{ij}` tile of eq. (15): entry ``(u, v)`` of
        the tile is entry ``(u + r0, v + c0)`` of the original.
        """
        block = self.row_block(r0, r1)
        if not (0 <= c0 <= c1 <= self.shape[1]):
            raise PartitionError(
                f"col range [{c0}, {c1}) out of range for {self.shape[1]} cols"
            )
        mask = (block.indices >= c0) & (block.indices < c1)
        # per-row counts of surviving entries -> new indptr
        rows = np.repeat(np.arange(block.shape[0], dtype=OFFSET_DTYPE), block.row_nnz())
        kept_rows = rows[mask]
        counts = np.zeros(block.shape[0], dtype=OFFSET_DTYPE)
        np.add.at(counts, kept_rows, 1)
        indptr = np.zeros(block.shape[0] + 1, dtype=OFFSET_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(
            (block.shape[0], c1 - c0),
            indptr,
            (block.indices[mask] - c0).astype(INDEX_DTYPE),
            block.vals[mask],
            validate=False,
        )

    # -- compute kernels ---------------------------------------------------------

    def spmm(
        self,
        dense: np.ndarray,
        out: Optional[np.ndarray] = None,
        accumulate: bool = False,
        use_scipy: bool = True,
    ) -> np.ndarray:
        """``out (+)= self @ dense`` — the vectorised CSR SpMM.

        ``dense`` is ``(k, d)`` with ``k == shape[1]``; the result is
        ``(m, d)``. With ``accumulate=True`` the product is added into
        ``out`` (the multi-stage algorithm's ``C^i += A^{ij} H^j``).

        With ``use_scipy=True`` (default) the heavy lifting runs through
        SciPy's compiled CSR matmul; ``use_scipy=False`` forces the pure
        NumPy reference kernel (the two are cross-checked in tests).
        """
        dense = np.asarray(dense)
        if dense.ndim != 2 or dense.shape[0] != self.shape[1]:
            raise ShapeError(
                f"spmm: operand shape {dense.shape} incompatible with "
                f"matrix shape {self.shape}"
            )
        m, d = self.shape[0], dense.shape[1]
        if out is None:
            out = np.zeros((m, d), dtype=np.result_type(self.vals, dense))
            accumulate = True  # freshly zeroed
        elif out.shape != (m, d):
            raise ShapeError(f"spmm: out shape {out.shape} != {(m, d)}")
        elif not accumulate:
            out.fill(0.0)
        if self.nnz == 0:
            return out
        if use_scipy:
            product = self._scipy() @ dense
            out += product.astype(out.dtype, copy=False)
            return out
        self._spmm_numpy_into(dense, out)
        return out

    def spmm_into(
        self,
        dense: np.ndarray,
        out: np.ndarray,
        accumulate: bool = True,
        use_scipy: bool = True,
    ) -> np.ndarray:
        """``out (+)= self @ dense`` without shape re-validation.

        The hot-path entry the timed :func:`repro.kernels.ops.spmm`
        kernel (and replayed execution plans) call every epoch: operand
        shapes were validated when the schedule was built, so this skips
        the checks and goes straight to the compiled/segmented kernel,
        reusing the per-matrix caches (``_scipy_cache``, the segment
        metadata behind :meth:`_segments`).
        """
        if not accumulate:
            out.fill(0.0)
        if self.nnz == 0:
            return out
        if use_scipy:
            # Straight into the compiled kernel, accumulating into
            # ``out`` in place: skips scipy's operator dispatch and
            # the temporary product array, which dominate at the
            # per-tile call rates of a replayed epoch. A strided
            # ``dense`` is flattened by ravel (scipy's own path pays
            # the same copy); ``out`` must stay a view. The kernel
            # operands are cached per matrix (immutable arrays).
            fast = self._fast_spmm
            if fast is None:
                fast = self._spmm_fast_args()
            m, k, indptr, indices, data, dtype, matvecs = fast
            if dtype is not None and dense.dtype == dtype == out.dtype:
                if out.flags.c_contiguous:
                    matvecs(m, k, dense.shape[1], indptr, indices, data,
                            dense.ravel(), out.ravel())
                    return out
                # Strided ``out`` (a narrow view of a wider buffer): the
                # kernel needs a contiguous target, so accumulate into a
                # zeroed scratch and add — the exact sequence (and
                # floats) of the operator fallback, without its dispatch.
                product = np.zeros(out.shape, dtype=dtype)
                matvecs(m, k, out.shape[1], indptr, indices, data,
                        dense.ravel(), product.ravel())
                out += product
                return out
            product = self._scipy() @ dense
            out += product.astype(out.dtype, copy=False)
            return out
        self._spmm_numpy_into(dense, out)
        return out

    def _spmm_fast_args(self):
        """Build + cache the compiled-kernel operands for :meth:`spmm_into`.

        Uses the scipy matrix's own index arrays (scipy may downcast
        them); ``dtype`` is None when the compiled kernel is absent, which
        routes every call to the operator fallback.
        """
        mat = self._scipy()
        matvecs = _csr_matvecs()
        fast = (
            self.shape[0], self.shape[1], mat.indptr, mat.indices, mat.data,
            mat.data.dtype if matvecs is not None else None, matvecs,
        )
        self._fast_spmm = fast
        return fast

    def _scipy(self):
        """A cached ``scipy.sparse.csr_matrix`` sharing this matrix's arrays.

        Safe to cache because :class:`CSRMatrix` is immutable by
        convention — every mutating operation returns a new instance.
        """
        if self._scipy_cache is None:
            from scipy import sparse as _sparse

            self._scipy_cache = _sparse.csr_matrix(
                (self.vals, self.indices, self.indptr), shape=self.shape
            )
        return self._scipy_cache

    def _segments(self, d: int):
        """Cached per-chunk schedule metadata for the NumPy SpMM kernel.

        For a feature width ``d`` the kernel tiles the nonzeros into
        chunks of at most ``32M / d`` gathered elements; the chunk row
        boundaries, nonzero ranges, non-empty-row masks, and ``reduceat``
        start offsets depend only on the sparsity pattern and the chunk
        size — not on the operand values — so they are computed once per
        ``(matrix, feature-width bucket)`` and reused every epoch. Lives
        beside ``_scipy_cache``; keyed by ``chunk_nnz`` so widths that
        bucket to the same chunking share one entry.
        """
        max_elements = 32_000_000
        chunk_nnz = max(max_elements // max(d, 1), 1)
        cache = self._segment_cache
        if cache is None:
            cache = self._segment_cache = {}
        blocks = cache.get(chunk_nnz)
        if blocks is not None:
            return blocks
        if len(cache) >= self._SEGMENT_CACHE_LIMIT:
            cache.clear()
        m = self.shape[0]
        nnz_per_row = np.diff(self.indptr)
        targets = np.arange(chunk_nnz, self.nnz, chunk_nnz, dtype=np.int64)
        cuts = np.searchsorted(self.indptr, targets, side="left")
        cuts = np.unique(cuts[(cuts > 0) & (cuts < m)])
        boundaries = [0, *cuts.tolist(), m]
        blocks = []
        for r0, r1 in zip(boundaries[:-1], boundaries[1:]):
            lo, hi = int(self.indptr[r0]), int(self.indptr[r1])
            if hi <= lo:
                continue
            nonempty = nnz_per_row[r0:r1] > 0
            starts = (self.indptr[r0:r1][nonempty] - lo).astype(np.intp)
            blocks.append((r0, r1, lo, hi, nonempty, starts))
        cache[chunk_nnz] = blocks
        return blocks

    def _spmm_numpy_into(self, dense: np.ndarray, out: np.ndarray) -> None:
        """Pure-NumPy gather + segment-sum kernel, accumulating into ``out``.

        Chunks over row blocks so the gathered ``(nnz_chunk, d)``
        temporary stays bounded (~32M elements) — the host-memory
        analogue of the tiled kernels the HPC guides recommend. The
        chunk schedule comes from the :meth:`_segments` cache.
        """
        for r0, r1, lo, hi, nonempty, starts in self._segments(out.shape[1]):
            gathered = self.vals[lo:hi, None] * dense[self.indices[lo:hi]]
            if starts.size:
                sums = np.add.reduceat(gathered, starts, axis=0)
                out_block = out[r0:r1]
                out_block[nonempty] += sums

    def spmv(self, vec: np.ndarray) -> np.ndarray:
        """``self @ vec`` for a 1-D vector."""
        vec = np.asarray(vec)
        if vec.ndim != 1:
            raise ShapeError(f"spmv requires 1-D operand, got {vec.shape}")
        return self.spmm(vec[:, None]).ravel()

    def sddmm(self, x: np.ndarray, y: np.ndarray) -> "CSRMatrix":
        """Sampled Dense-Dense Matrix Multiplication.

        For every stored position ``(u, v)`` of this matrix, compute
        ``<x[u], y[v]>`` and return a matrix with the same sparsity
        pattern holding those values (the existing values are the
        *pattern* only and are ignored). This is the kernel the paper
        names as future work for Graph Attention Network support (§7):
        GAT's unnormalised attention logits are exactly an SDDMM over
        the adjacency pattern.
        """
        x = np.asarray(x)
        y = np.asarray(y)
        if x.ndim != 2 or y.ndim != 2:
            raise ShapeError("sddmm requires 2-D operands")
        if x.shape[0] != self.shape[0]:
            raise ShapeError(
                f"sddmm: x has {x.shape[0]} rows, matrix has {self.shape[0]}"
            )
        if y.shape[0] != self.shape[1]:
            raise ShapeError(
                f"sddmm: y has {y.shape[0]} rows, matrix has {self.shape[1]} cols"
            )
        if x.shape[1] != y.shape[1]:
            raise ShapeError(
                f"sddmm: feature widths differ ({x.shape[1]} vs {y.shape[1]})"
            )
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.intp), self.row_nnz()
        )
        vals = np.einsum(
            "ij,ij->i", x[rows], y[self.indices], optimize=True
        ).astype(FLOAT_DTYPE)
        return CSRMatrix(self.shape, self.indptr, self.indices, vals,
                         validate=False)

    def row_softmax(self) -> "CSRMatrix":
        """Softmax over each row's stored values (GAT's attention norm).

        Empty rows stay empty; numerically stabilised per row.
        """
        if self.nnz == 0:
            return CSRMatrix(self.shape, self.indptr, self.indices,
                             self.vals.copy(), validate=False)
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.intp), self.row_nnz()
        )
        row_max = np.full(self.shape[0], -np.inf, dtype=np.float64)
        np.maximum.at(row_max, rows, self.vals.astype(np.float64))
        shifted = self.vals.astype(np.float64) - row_max[rows]
        exp = np.exp(shifted)
        denom = np.zeros(self.shape[0], dtype=np.float64)
        np.add.at(denom, rows, exp)
        out_vals = (exp / denom[rows]).astype(FLOAT_DTYPE)
        return CSRMatrix(self.shape, self.indptr, self.indices, out_vals,
                         validate=False)

    def scale_rows(self, factors: np.ndarray) -> "CSRMatrix":
        """A new matrix with row ``i`` multiplied by ``factors[i]``."""
        factors = np.asarray(factors, dtype=FLOAT_DTYPE)
        if factors.shape != (self.shape[0],):
            raise ShapeError(
                f"scale_rows: {factors.shape} factors for {self.shape[0]} rows"
            )
        expanded = np.repeat(factors, self.row_nnz())
        return CSRMatrix(
            self.shape, self.indptr, self.indices, self.vals * expanded,
            validate=False,
        )

    def scale_cols(self, factors: np.ndarray) -> "CSRMatrix":
        """A new matrix with column ``j`` multiplied by ``factors[j]``."""
        factors = np.asarray(factors, dtype=FLOAT_DTYPE)
        if factors.shape != (self.shape[1],):
            raise ShapeError(
                f"scale_cols: {factors.shape} factors for {self.shape[1]} cols"
            )
        return CSRMatrix(
            self.shape, self.indptr, self.indices, self.vals * factors[self.indices],
            validate=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
