"""Coordinate-format sparse matrices (construction/interchange format).

COO is the library's ingestion format: graph generators and the I/O layer
produce edge lists, which are deduplicated/sorted here and converted to
:class:`~repro.sparse.csr.CSRMatrix` for computation, mirroring the
paper's pipeline (PIGO edge lists -> CSR for cuSPARSE).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE, INDEX_DTYPE, OFFSET_DTYPE
from repro.errors import ShapeError


class COOMatrix:
    """A sparse matrix as parallel (row, col, val) arrays.

    Invariants (established by the constructor):

    * ``rows``/``cols`` are within ``shape``;
    * entries are sorted by (row, col);
    * duplicate coordinates are summed.
    """

    __slots__ = ("shape", "rows", "cols", "vals")

    def __init__(
        self,
        shape: Tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: Optional[np.ndarray] = None,
        sum_duplicates: bool = True,
    ):
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise ShapeError(f"negative matrix shape {shape}")
        rows = np.asarray(rows, dtype=OFFSET_DTYPE).ravel()
        cols = np.asarray(cols, dtype=OFFSET_DTYPE).ravel()
        if rows.shape != cols.shape:
            raise ShapeError(
                f"rows and cols length mismatch: {rows.shape} vs {cols.shape}"
            )
        if vals is None:
            vals = np.ones(rows.shape[0], dtype=FLOAT_DTYPE)
        else:
            vals = np.asarray(vals, dtype=FLOAT_DTYPE).ravel()
            if vals.shape != rows.shape:
                raise ShapeError(
                    f"vals length mismatch: {vals.shape} vs {rows.shape}"
                )
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise ShapeError(f"row index out of range for {n_rows} rows")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise ShapeError(f"col index out of range for {n_cols} cols")
        # canonical order: sort by (row, col)
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if sum_duplicates and rows.size:
            keys = rows * n_cols + cols
            unique_mask = np.empty(rows.size, dtype=bool)
            unique_mask[0] = True
            np.not_equal(keys[1:], keys[:-1], out=unique_mask[1:])
            if not unique_mask.all():
                group_ids = np.cumsum(unique_mask) - 1
                summed = np.zeros(group_ids[-1] + 1, dtype=vals.dtype)
                np.add.at(summed, group_ids, vals)
                rows = rows[unique_mask]
                cols = cols[unique_mask]
                vals = summed
        self.shape = (n_rows, n_cols)
        self.rows = rows
        self.cols = cols
        self.vals = vals

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: np.ndarray,
        symmetrize: bool = False,
        vals: Optional[np.ndarray] = None,
    ) -> "COOMatrix":
        """Build an adjacency matrix from an ``(m, 2)`` edge array.

        ``symmetrize=True`` adds the reverse of every edge (GNN benchmark
        graphs are used undirected).
        """
        edges = np.asarray(edges, dtype=OFFSET_DTYPE)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ShapeError(f"edges must be (m, 2), got {edges.shape}")
        rows, cols = edges[:, 0], edges[:, 1]
        if symmetrize:
            rows = np.concatenate([rows, edges[:, 1]])
            cols = np.concatenate([cols, edges[:, 0]])
            if vals is not None:
                vals = np.concatenate([vals, vals])
        return cls((num_vertices, num_vertices), rows, cols, vals)

    # -- queries ---------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    def to_dense(self) -> np.ndarray:
        """Dense copy (small matrices / tests only)."""
        out = np.zeros(self.shape, dtype=self.vals.dtype)
        out[self.rows, self.cols] = self.vals
        return out

    def transpose(self) -> "COOMatrix":
        """The transposed matrix (re-canonicalised)."""
        return COOMatrix(
            (self.shape[1], self.shape[0]), self.cols, self.rows, self.vals
        )

    def row_degrees(self) -> np.ndarray:
        """Number of stored entries per row."""
        deg = np.zeros(self.shape[0], dtype=OFFSET_DTYPE)
        np.add.at(deg, self.rows, 1)
        return deg

    def col_degrees(self) -> np.ndarray:
        """Number of stored entries per column."""
        deg = np.zeros(self.shape[1], dtype=OFFSET_DTYPE)
        np.add.at(deg, self.cols, 1)
        return deg

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
