"""Partition vectors and 2-D tilings (Section 4.1, eqs. (13)–(15)).

A partition vector ``p`` with ``P`` parts over dimension ``n`` is a
non-decreasing integer vector ``0 = p[0] <= ... <= p[P] = n``; part ``i``
is the index range ``[p[i], p[i+1])``. MG-GCN uses *symmetric* uniform
partitioning (``p == q``) of the permuted adjacency matrix, relying on
the random permutation for nnz balance (§5.2); a nnz-balanced partition
is also provided for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import PartitionError
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class PartitionVector:
    """An immutable partition vector."""

    boundaries: Tuple[int, ...]

    def __post_init__(self) -> None:
        b = self.boundaries
        if len(b) < 2:
            raise PartitionError(f"partition vector needs >= 2 boundaries, got {b!r}")
        if b[0] != 0:
            raise PartitionError(f"partition vector must start at 0, got {b!r}")
        if any(b[i] > b[i + 1] for i in range(len(b) - 1)):
            raise PartitionError(f"partition vector must be non-decreasing: {b!r}")

    @property
    def num_parts(self) -> int:
        return len(self.boundaries) - 1

    @property
    def total(self) -> int:
        """The partitioned dimension ``n``."""
        return self.boundaries[-1]

    def part(self, i: int) -> Tuple[int, int]:
        """Half-open index range of part ``i``."""
        if not (0 <= i < self.num_parts):
            raise PartitionError(f"part {i} out of range for {self.num_parts} parts")
        return self.boundaries[i], self.boundaries[i + 1]

    def size(self, i: int) -> int:
        lo, hi = self.part(i)
        return hi - lo

    def sizes(self) -> List[int]:
        return [self.size(i) for i in range(self.num_parts)]

    def owner(self, index: int) -> int:
        """The part containing global ``index``."""
        if not (0 <= index < self.total):
            raise PartitionError(f"index {index} out of range [0, {self.total})")
        # searchsorted over the boundary array; 'right' so boundary indices
        # belong to the part that starts at them.
        return int(np.searchsorted(np.asarray(self.boundaries), index, side="right") - 1)

    def owners(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`owner`: the owning part of every index.

        One ``searchsorted`` over the whole batch — this is the shard
        routing step of the serving path, evaluated per frontier, so it
        must not loop in Python.
        """
        indices = np.asarray(indices)
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.total
        ):
            raise PartitionError(
                f"index out of range [0, {self.total}) in owners() batch"
            )
        boundaries = np.asarray(self.boundaries)
        return (
            np.searchsorted(boundaries, indices, side="right") - 1
        ).astype(np.int64)

    def __iter__(self):
        for i in range(self.num_parts):
            yield self.part(i)


def uniform_partition(n: int, parts: int) -> PartitionVector:
    """Split ``[0, n)`` into ``parts`` near-equal contiguous ranges.

    The first ``n % parts`` parts get one extra element, matching the
    usual block distribution.
    """
    if parts <= 0:
        raise PartitionError(f"need a positive part count, got {parts}")
    if n < 0:
        raise PartitionError(f"cannot partition negative length {n}")
    base, extra = divmod(n, parts)
    boundaries = [0]
    for i in range(parts):
        boundaries.append(boundaries[-1] + base + (1 if i < extra else 0))
    return PartitionVector(tuple(boundaries))


def balanced_nnz_partition(matrix: CSRMatrix, parts: int) -> PartitionVector:
    """Row partition balancing stored entries per part.

    A greedy prefix scan over the row-nnz cumulative sum: part boundaries
    are placed where the running nnz crosses multiples of ``nnz/parts``.
    Used by the ablation benches to compare against the paper's
    permutation-based balancing.
    """
    if parts <= 0:
        raise PartitionError(f"need a positive part count, got {parts}")
    n = matrix.shape[0]
    cumulative = matrix.indptr[1:]  # nnz up to and including each row
    total = matrix.nnz
    boundaries = [0]
    for i in range(1, parts):
        target = total * i / parts
        boundary = int(np.searchsorted(cumulative, target, side="left")) + 1
        boundary = max(boundary, boundaries[-1])
        boundary = min(boundary, n)
        boundaries.append(boundary)
    boundaries.append(n)
    return PartitionVector(tuple(boundaries))


def weighted_cost_partition(
    row_costs: np.ndarray, capacities: Sequence[float]
) -> PartitionVector:
    """Row partition matching a per-row cost vector to per-part capacities.

    The resource-aware generalisation of :func:`balanced_nnz_partition`
    (CaPGNN's partitioner): each row carries a modelled cost (compute +
    communication time) and each part a relative capacity (how much of
    the total cost it should absorb, e.g. proportional to its GPU's
    bandwidth). Boundaries are placed where the cost prefix sum crosses
    the capacity-proportional targets. Every part is kept non-empty
    whenever ``n >= parts``.
    """
    costs = np.asarray(row_costs, dtype=np.float64)
    if costs.ndim != 1:
        raise PartitionError(f"row_costs must be 1-D, got shape {costs.shape}")
    if costs.size and costs.min() < 0:
        raise PartitionError("row costs must be non-negative")
    caps = np.asarray(capacities, dtype=np.float64)
    parts = caps.size
    if parts <= 0:
        raise PartitionError(f"need a positive part count, got {parts}")
    if caps.min() <= 0:
        raise PartitionError(f"capacities must be positive, got {caps!r}")
    n = costs.size
    cumulative = np.cumsum(costs)  # cost up to and including each row
    total = float(cumulative[-1]) if n else 0.0
    targets = np.cumsum(caps / caps.sum()) * total
    boundaries = [0]
    for i in range(parts - 1):
        boundary = int(np.searchsorted(cumulative, targets[i], side="left")) + 1
        # keep later parts non-empty: leave at least one row per
        # remaining part (mirrors uniform_partition when costs are flat
        # and degenerate graphs can't starve a rank of rows).
        if n >= parts:
            boundary = max(boundary, boundaries[-1] + 1)
            boundary = min(boundary, n - (parts - 1 - i))
        else:
            boundary = max(boundary, boundaries[-1])
            boundary = min(boundary, n)
        boundaries.append(boundary)
    boundaries.append(n)
    return PartitionVector(tuple(boundaries))


def tile_grid(
    matrix: CSRMatrix, row_parts: PartitionVector, col_parts: PartitionVector
) -> List[List[CSRMatrix]]:
    """The full 2-D tiling ``A^{ij}`` of eq. (15).

    Returns ``tiles[i][j]`` = sub-matrix of rows ``row_parts.part(i)`` and
    columns ``col_parts.part(j)`` with re-based indices.
    """
    if row_parts.total != matrix.shape[0]:
        raise PartitionError(
            f"row partition covers {row_parts.total}, matrix has {matrix.shape[0]} rows"
        )
    if col_parts.total != matrix.shape[1]:
        raise PartitionError(
            f"col partition covers {col_parts.total}, matrix has {matrix.shape[1]} cols"
        )
    tiles: List[List[CSRMatrix]] = []
    for i in range(row_parts.num_parts):
        r0, r1 = row_parts.part(i)
        block = matrix.row_block(r0, r1)
        row_tiles: List[CSRMatrix] = []
        for j in range(col_parts.num_parts):
            c0, c1 = col_parts.part(j)
            row_tiles.append(block.tile(0, block.shape[0], c0, c1))
        tiles.append(row_tiles)
    return tiles


def tile_nnz_matrix(
    matrix: CSRMatrix, row_parts: PartitionVector, col_parts: PartitionVector
) -> np.ndarray:
    """nnz of every ``A^{ij}`` tile without materialising the tiles.

    ``out[i, j]`` is the stored-entry count of tile ``(i, j)``; this is
    the load-balance diagnostic behind Figures 6/7 (computation time of a
    stage is proportional to its tile's nnz).
    """
    if row_parts.total != matrix.shape[0] or col_parts.total != matrix.shape[1]:
        raise PartitionError("partition vectors do not match matrix shape")
    col_boundaries = np.asarray(col_parts.boundaries[1:-1])
    out = np.zeros((row_parts.num_parts, col_parts.num_parts), dtype=np.int64)
    for i in range(row_parts.num_parts):
        r0, r1 = row_parts.part(i)
        cols = matrix.indices[matrix.indptr[r0] : matrix.indptr[r1]]
        tile_of_col = np.searchsorted(col_boundaries, cols, side="right")
        np.add.at(out[i], tile_of_col, 1)
    return out
