"""Metadata-only sparse tiles for symbolic-mode runs.

When the benchmark harness "runs" graphs too large to materialise
(ogbn-papers100M: 1.61B edges), the partitioner produces
:class:`SymbolicCSR` tiles carrying only shape and nnz — exactly the
quantities the cost model consumes. Kernels accept either a real
:class:`~repro.sparse.csr.CSRMatrix` or a :class:`SymbolicCSR`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.config import FLOAT_SIZE, INDEX_SIZE, OFFSET_SIZE
from repro.errors import ShapeError


@dataclass(frozen=True)
class SymbolicCSR:
    """Shape/nnz descriptor of a CSR matrix that is never materialised."""

    shape: Tuple[int, int]
    nnz: int

    def __post_init__(self) -> None:
        if self.shape[0] < 0 or self.shape[1] < 0:
            raise ShapeError(f"negative matrix shape {self.shape}")
        if self.nnz < 0:
            raise ShapeError(f"negative nnz {self.nnz}")
        if self.nnz > self.shape[0] * self.shape[1]:
            raise ShapeError(
                f"nnz {self.nnz} exceeds capacity of shape {self.shape}"
            )

    @property
    def nbytes(self) -> int:
        """Device bytes of the CSR arrays (indptr + indices + vals)."""
        return (
            (self.shape[0] + 1) * OFFSET_SIZE
            + self.nnz * (INDEX_SIZE + FLOAT_SIZE)
        )

    def transpose(self) -> "SymbolicCSR":
        return SymbolicCSR((self.shape[1], self.shape[0]), self.nnz)


#: Anything a kernel can treat as a CSR operand.
AnyCSR = Union["SymbolicCSR", "CSRMatrix"]  # noqa: F821 - forward ref for docs


def csr_meta(matrix) -> SymbolicCSR:
    """The symbolic descriptor of any CSR-like object."""
    return SymbolicCSR(tuple(matrix.shape), int(matrix.nnz))
