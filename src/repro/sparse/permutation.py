"""Vertex permutations for load balance (Section 5.2).

MG-GCN randomly permutes the vertices before uniform 1D partitioning so
that every tile of the adjacency matrix receives a near-equal share of
the nonzeros. ``perm`` maps old vertex ids to new ones:
``new_id = perm[old_id]``. Applying ``perm`` to a matrix ``A`` yields
``B`` with ``B[perm[u], perm[v]] = A[u, v]`` (a symmetric permutation
``P A P^T``).

A degree-sorted permutation is included as the adversarial ordering used
in tests and ablations — it concentrates nnz in the first tiles, the
worst case the random permutation protects against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import OFFSET_DTYPE
from repro.errors import ShapeError
from repro.sparse.coo import COOMatrix
from repro.utils.rng import SeedLike, as_generator


def identity_permutation(n: int) -> np.ndarray:
    """The do-nothing permutation."""
    if n < 0:
        raise ValueError(f"negative permutation length {n}")
    return np.arange(n, dtype=OFFSET_DTYPE)


def random_permutation(n: int, seed: SeedLike = None) -> np.ndarray:
    """A uniformly random permutation of ``[0, n)`` (the paper's §5.2)."""
    rng = as_generator(seed)
    return rng.permutation(n).astype(OFFSET_DTYPE)


def degree_sort_permutation(degrees: np.ndarray, descending: bool = True) -> np.ndarray:
    """Permutation placing high-degree vertices first (or last).

    ``perm[old] = new position``; stable with respect to vertex id for
    equal degrees, so results are deterministic.
    """
    degrees = np.asarray(degrees)
    order = np.argsort(-degrees if descending else degrees, kind="stable")
    perm = np.empty_like(order, dtype=OFFSET_DTYPE)
    perm[order] = np.arange(order.size, dtype=OFFSET_DTYPE)
    return perm


def bfs_permutation(adj: "COOMatrix", start: int = 0) -> np.ndarray:
    """Breadth-first vertex ordering (a locality-improving baseline).

    Orders vertices by BFS discovery over the symmetrised graph,
    restarting at the smallest unvisited id per component. BFS-style
    reorderings improve SpMM cache locality but *concentrate* nnz in the
    leading tiles — the ablation benches contrast it with §5.2's random
    permutation, which optimises balance instead.
    """
    from repro.sparse.csr import CSRMatrix  # local import; cycle otherwise

    if adj.shape[0] != adj.shape[1]:
        raise ShapeError(f"BFS ordering requires a square matrix, got {adj.shape}")
    n = adj.shape[0]
    if n == 0:
        return np.empty(0, dtype=OFFSET_DTYPE)
    if not (0 <= start < n):
        raise ValueError(f"start vertex {start} out of range [0, {n})")
    sym_rows = np.concatenate([adj.rows, adj.cols])
    sym_cols = np.concatenate([adj.cols, adj.rows])
    csr = CSRMatrix.from_coo(
        COOMatrix(adj.shape, sym_rows, sym_cols, sum_duplicates=True)
    )
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=OFFSET_DTYPE)
    cursor = 0
    frontier = [start]
    visited[start] = True
    next_restart = 0
    while cursor < n:
        if not frontier:
            while next_restart < n and visited[next_restart]:
                next_restart += 1
            frontier = [next_restart]
            visited[next_restart] = True
        current = np.asarray(frontier, dtype=np.intp)
        order[cursor : cursor + current.size] = current
        cursor += current.size
        # expand the whole frontier vectorised
        starts = csr.indptr[current]
        ends = csr.indptr[current + 1]
        neighbour_chunks = [
            csr.indices[s:e] for s, e in zip(starts, ends) if e > s
        ]
        if neighbour_chunks:
            neighbours = np.unique(np.concatenate(neighbour_chunks))
            fresh = neighbours[~visited[neighbours]]
            visited[fresh] = True
            frontier = fresh.tolist()
        else:
            frontier = []
    perm = np.empty(n, dtype=OFFSET_DTYPE)
    perm[order] = np.arange(n, dtype=OFFSET_DTYPE)
    return perm


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """The inverse permutation: ``inv[perm[i]] == i``."""
    perm = _check_permutation(perm)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=perm.dtype)
    return inv


def apply_permutation(adj: COOMatrix, perm: np.ndarray) -> COOMatrix:
    """Symmetrically permute a square matrix: ``out[p[u], p[v]] = adj[u, v]``."""
    if adj.shape[0] != adj.shape[1]:
        raise ShapeError(f"symmetric permutation requires a square matrix, got {adj.shape}")
    perm = _check_permutation(perm)
    if perm.size != adj.shape[0]:
        raise ShapeError(
            f"permutation length {perm.size} != matrix dimension {adj.shape[0]}"
        )
    return COOMatrix(
        adj.shape, perm[adj.rows], perm[adj.cols], adj.vals, sum_duplicates=False
    )


def permute_rows(array: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Reorder the rows of a dense array: ``out[perm[i]] = array[i]``."""
    perm = _check_permutation(perm)
    if array.shape[0] != perm.size:
        raise ShapeError(
            f"permutation length {perm.size} != array rows {array.shape[0]}"
        )
    out = np.empty_like(array)
    out[perm] = array
    return out


def _check_permutation(perm: np.ndarray) -> np.ndarray:
    perm = np.asarray(perm, dtype=OFFSET_DTYPE).ravel()
    n = perm.size
    if n:
        seen = np.zeros(n, dtype=bool)
        if perm.min() < 0 or perm.max() >= n:
            raise ValueError("permutation values out of range")
        seen[perm] = True
        if not seen.all():
            raise ValueError("array is not a permutation (duplicate or missing values)")
    return perm
