"""Graph I/O: edge-list text, binary CSR, and NPZ dataset bundles.

The paper uses PIGO for parallel graph ingestion; this layer is the
equivalent substrate — deliberately simple formats with validation, used
by the examples to persist generated datasets.
"""

from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.binary import read_binary_csr, write_binary_csr
from repro.io.npz import load_dataset_npz, save_dataset_npz

__all__ = [
    "read_edgelist",
    "write_edgelist",
    "read_binary_csr",
    "write_binary_csr",
    "load_dataset_npz",
    "save_dataset_npz",
]
