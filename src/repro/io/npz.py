"""NPZ dataset bundles: one-file persistence for functional datasets."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.datasets.loader import Dataset
from repro.sparse.coo import COOMatrix

PathLike = Union[str, os.PathLike]

_REQUIRED_KEYS = (
    "name",
    "num_classes",
    "adj_rows",
    "adj_cols",
    "adj_vals",
    "n",
    "features",
    "labels",
    "train_mask",
    "val_mask",
    "test_mask",
)


def save_dataset_npz(path: PathLike, dataset: Dataset) -> None:
    """Persist a functional dataset as a compressed ``.npz`` bundle."""
    np.savez_compressed(
        path,
        name=np.asarray(dataset.name),
        num_classes=np.asarray(dataset.num_classes),
        n=np.asarray(dataset.n),
        adj_rows=dataset.adjacency.rows,
        adj_cols=dataset.adjacency.cols,
        adj_vals=dataset.adjacency.vals,
        features=dataset.features,
        labels=dataset.labels,
        train_mask=dataset.train_mask,
        val_mask=dataset.val_mask,
        test_mask=dataset.test_mask,
    )


def load_dataset_npz(path: PathLike) -> Dataset:
    """Load a dataset bundle written by :func:`save_dataset_npz`."""
    with np.load(path, allow_pickle=False) as bundle:
        missing = [k for k in _REQUIRED_KEYS if k not in bundle]
        if missing:
            raise GraphFormatError(f"{path}: missing keys {missing}")
        n = int(bundle["n"])
        adjacency = COOMatrix(
            (n, n),
            bundle["adj_rows"],
            bundle["adj_cols"],
            bundle["adj_vals"],
            sum_duplicates=False,
        )
        return Dataset(
            name=str(bundle["name"]),
            adjacency=adjacency,
            features=bundle["features"],
            labels=bundle["labels"],
            train_mask=bundle["train_mask"],
            val_mask=bundle["val_mask"],
            test_mask=bundle["test_mask"],
            num_classes=int(bundle["num_classes"]),
        )
