"""Binary CSR container (PIGO-style fast path).

Layout (little-endian):

=========  ======  =====================================
offset     type    meaning
=========  ======  =====================================
0          8s      magic ``b"REPROCSR"``
8          u32     format version (1)
12         u32     reserved (0)
16         u64     rows
24         u64     cols
32         u64     nnz
40         ...     indptr  (``rows+1`` x i64)
...        ...     indices (``nnz`` x i32)
...        ...     vals    (``nnz`` x f32)
=========  ======  =====================================
"""

from __future__ import annotations

import os
import struct
from typing import Union

import numpy as np

from repro.config import FLOAT_DTYPE, INDEX_DTYPE, OFFSET_DTYPE
from repro.errors import GraphFormatError
from repro.sparse.csr import CSRMatrix

PathLike = Union[str, os.PathLike]

MAGIC = b"REPROCSR"
VERSION = 1
_HEADER = struct.Struct("<8sII QQQ")


def write_binary_csr(path: PathLike, matrix: CSRMatrix) -> None:
    """Serialise a CSR matrix to the binary container."""
    with open(path, "wb") as fh:
        fh.write(
            _HEADER.pack(
                MAGIC, VERSION, 0, matrix.shape[0], matrix.shape[1], matrix.nnz
            )
        )
        fh.write(np.ascontiguousarray(matrix.indptr, dtype="<i8").tobytes())
        fh.write(np.ascontiguousarray(matrix.indices, dtype="<i4").tobytes())
        fh.write(np.ascontiguousarray(matrix.vals, dtype="<f4").tobytes())


def read_binary_csr(path: PathLike) -> CSRMatrix:
    """Load a CSR matrix from the binary container, with validation."""
    with open(path, "rb") as fh:
        header = fh.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise GraphFormatError(f"{path}: truncated header")
        magic, version, _reserved, rows, cols, nnz = _HEADER.unpack(header)
        if magic != MAGIC:
            raise GraphFormatError(f"{path}: bad magic {magic!r}")
        if version != VERSION:
            raise GraphFormatError(f"{path}: unsupported version {version}")
        indptr = np.frombuffer(fh.read((rows + 1) * 8), dtype="<i8")
        indices = np.frombuffer(fh.read(nnz * 4), dtype="<i4")
        vals = np.frombuffer(fh.read(nnz * 4), dtype="<f4")
        if indptr.size != rows + 1 or indices.size != nnz or vals.size != nnz:
            raise GraphFormatError(f"{path}: truncated body")
        if fh.read(1):
            raise GraphFormatError(f"{path}: trailing bytes after CSR body")
    try:
        return CSRMatrix(
            (rows, cols),
            indptr.astype(OFFSET_DTYPE),
            indices.astype(INDEX_DTYPE),
            vals.astype(FLOAT_DTYPE),
        )
    except Exception as exc:  # invalid structure inside a well-formed file
        raise GraphFormatError(f"{path}: invalid CSR structure: {exc}") from exc
