"""Whitespace-separated edge-list text format.

Lines are ``src dst [weight]``; ``#`` and ``%`` start comment lines
(MatrixMarket-style headers are tolerated as comments). Vertex ids must
be non-negative integers. Parsing is vectorised through
``numpy.loadtxt``-free string handling to avoid quadratic Python loops.
"""

from __future__ import annotations

import io
import os
from typing import Optional, Tuple, Union

import numpy as np

from repro.config import FLOAT_DTYPE, OFFSET_DTYPE
from repro.errors import GraphFormatError
from repro.sparse.coo import COOMatrix

PathLike = Union[str, os.PathLike]


def write_edgelist(
    path: PathLike,
    coo: COOMatrix,
    include_weights: bool = False,
    header: Optional[str] = None,
) -> None:
    """Write a COO matrix as an edge list."""
    with open(path, "w", encoding="ascii") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        fh.write(f"# vertices={coo.shape[0]} edges={coo.nnz}\n")
        if include_weights:
            for r, c, v in zip(coo.rows, coo.cols, coo.vals):
                fh.write(f"{int(r)} {int(c)} {float(v):.9g}\n")
        else:
            for r, c in zip(coo.rows, coo.cols):
                fh.write(f"{int(r)} {int(c)}\n")


def read_edgelist(
    path: PathLike,
    num_vertices: Optional[int] = None,
    symmetrize: bool = False,
) -> COOMatrix:
    """Parse an edge list into a COO adjacency matrix.

    ``num_vertices`` defaults to ``max vertex id + 1``. Raises
    :class:`GraphFormatError` on malformed lines, negative ids, or ids
    outside an explicit ``num_vertices``.
    """
    rows_list = []
    cols_list = []
    vals_list = []
    has_weights: Optional[bool] = None
    with open(path, "r", encoding="ascii") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'src dst [weight]', got {line!r}"
                )
            if has_weights is None:
                has_weights = len(parts) == 3
            elif has_weights != (len(parts) == 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: inconsistent column count"
                )
            try:
                src = int(parts[0])
                dst = int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from exc
            if src < 0 or dst < 0:
                raise GraphFormatError(
                    f"{path}:{lineno}: negative vertex id in {line!r}"
                )
            rows_list.append(src)
            cols_list.append(dst)
            if has_weights:
                try:
                    vals_list.append(float(parts[2]))
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{lineno}: non-numeric weight in {line!r}"
                    ) from exc
    rows = np.asarray(rows_list, dtype=OFFSET_DTYPE)
    cols = np.asarray(cols_list, dtype=OFFSET_DTYPE)
    vals = np.asarray(vals_list, dtype=FLOAT_DTYPE) if has_weights else None
    max_id = int(max(rows.max(initial=-1), cols.max(initial=-1)))
    if num_vertices is None:
        num_vertices = max_id + 1
    elif max_id >= num_vertices:
        raise GraphFormatError(
            f"{path}: vertex id {max_id} >= declared num_vertices {num_vertices}"
        )
    if symmetrize:
        rows, cols = (
            np.concatenate([rows, cols]),
            np.concatenate([cols, rows]),
        )
        if vals is not None:
            vals = np.concatenate([vals, vals])
    return COOMatrix((num_vertices, num_vertices), rows, cols, vals)
