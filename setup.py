"""Legacy entry point: this environment lacks the `wheel` package, so
`pip install -e .` falls back to `setup.py develop` via this shim.
All real metadata lives in pyproject.toml."""
from setuptools import setup

setup()
